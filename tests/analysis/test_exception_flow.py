"""exception-flow rule: broad handlers swallowing guarded exceptions."""

from repro.analysis import CheckConfig, Project, check_project

CONFIG = CheckConfig(
    exception_paths=("pkg/",),
    guarded_exceptions=("SearchCancelled", "WorkerDiedError"),
    guarded_exception_bases=("RuntimeError",),
    solver_roots=("Tuner.search",),
)


def run_on(sources, config=CONFIG):
    project = Project.from_sources(sources, config=config)
    return check_project(project, rules=["exception-flow"]).findings


SWALLOWED = """\
class SearchCancelled(RuntimeError):
    pass

def solve_cell(cell):
    if cell.cancelled:
        raise SearchCancelled(cell)
    return cell

class Tuner:
    def search(self, cells):
        out = []
        for cell in cells:
            try:
                out.append(solve_cell(cell))
            except Exception:
                continue
        return out
"""

CAUGHT_BY_NAME_FIRST = """\
class SearchCancelled(RuntimeError):
    pass

def solve_cell(cell):
    if cell.cancelled:
        raise SearchCancelled(cell)
    return cell

class Tuner:
    def search(self, cells):
        out = []
        for cell in cells:
            try:
                out.append(solve_cell(cell))
            except SearchCancelled:
                raise
            except Exception:
                continue
        return out
"""

RERAISING_BROAD = """\
class SearchCancelled(RuntimeError):
    pass

def solve_cell(cell):
    raise SearchCancelled(cell)

class Tuner:
    def search(self, cells):
        try:
            return [solve_cell(c) for c in cells]
        except Exception as exc:
            if isinstance(exc, SearchCancelled):
                raise
            return []
"""

UNREACHABLE = """\
class SearchCancelled(RuntimeError):
    pass

def solve_cell(cell):
    raise SearchCancelled(cell)

class Maintenance:
    def cleanup(self, cells):
        try:
            return [solve_cell(c) for c in cells]
        except Exception:
            return []
"""


def test_broad_handler_swallowing_guarded_exception_is_flagged():
    findings = run_on({"pkg/solver.py": SWALLOWED})
    assert len(findings) == 1
    (finding,) = findings
    assert "SearchCancelled" in finding.message
    assert "Tuner.search" in finding.message
    assert finding.line == 15  # the except Exception: line


def test_named_catch_before_broad_handler_is_clean():
    assert run_on({"pkg/solver.py": CAUGHT_BY_NAME_FIRST}) == ()


def test_broad_handler_that_reraises_is_clean():
    assert run_on({"pkg/solver.py": RERAISING_BROAD}) == ()


def test_handlers_off_the_solver_path_are_ignored():
    # same swallow shape, but Maintenance.cleanup is not reachable
    # from the configured solver roots
    assert run_on({"pkg/solver.py": UNREACHABLE}) == ()


def test_base_class_handler_counts_as_broad():
    source = SWALLOWED.replace("except Exception:",
                               "except RuntimeError:")
    findings = run_on({"pkg/solver.py": source})
    assert len(findings) == 1
    assert "SearchCancelled" in findings[0].message


def test_escape_propagates_through_callable_reference():
    source = """\
class WorkerDiedError(RuntimeError):
    pass

class Tuner:
    def _work(self, job):
        raise WorkerDiedError(job)

    def _dispatch(self, run, job):
        # the executor pattern: _work is passed, not called, here
        return run(self._work, job)

    def search(self, jobs):
        try:
            return [self._dispatch(apply, j) for j in jobs]
        except Exception:
            return []
"""
    findings = run_on({"pkg/solver.py": source})
    assert len(findings) == 1
    assert "WorkerDiedError" in findings[0].message


def test_suppression_with_justification_is_honored():
    source = SWALLOWED.replace(
        "except Exception:",
        "except Exception:  # repro: allow[exception-flow] "
        "daemon loop must survive anything")
    project = Project.from_sources({"pkg/solver.py": source},
                                   config=CONFIG)
    result = check_project(project, rules=["exception-flow"])
    assert result.findings == ()
