"""lock-order rule: cycles, re-acquisition, await-under-lock."""

from repro.analysis import CheckConfig, Project, check_project

CONFIG = CheckConfig(lock_order_paths=("pkg/locked.py",))


def run_on(sources, config=CONFIG):
    project = Project.from_sources(sources, config=config)
    return check_project(project, rules=["lock-order"]).findings


CYCLE = """\
import threading

class Store:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
"""

CONSISTENT = """\
import threading

class Store:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                pass
"""

CALL_CYCLE = """\
import threading

class Metrics:
    def __init__(self):
        self._mlock = threading.Lock()
        self.count = 0

    def inc(self, store):
        with self._mlock:
            store.snapshot()

class Store:
    def __init__(self):
        self._slock = threading.Lock()
        self.metrics = Metrics()

    def add(self):
        with self._slock:
            self.metrics.inc(self)

    def snapshot(self):
        with self._slock:
            return self.metrics.count
"""

REACQUIRE = """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            with self._lock:
                pass
"""

AWAIT_UNDER_LOCK = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()

    async def handle(self, job):
        with self._lock:
            return await self.dispatch(job)

    async def dispatch(self, job):
        return job
"""

ASYNC_LOCK_CLEAN = """\
import asyncio
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._alock = asyncio.Lock()

    async def handle(self, job):
        async with self._alock:
            return await self.dispatch(job)

    async def dispatch(self, job):
        return job
"""


def test_lexical_cycle_is_flagged():
    findings = run_on({"pkg/locked.py": CYCLE})
    cycle = [f for f in findings if "cycle" in f.message]
    assert len(cycle) == 2  # one finding per edge in the cycle
    chains = {f.message.split(":")[0] for f in cycle}
    assert chains == {"lock-order cycle Store._a -> Store._b -> Store._a"}


def test_consistent_order_is_clean():
    assert run_on({"pkg/locked.py": CONSISTENT}) == ()


def test_cycle_through_method_calls_is_flagged():
    findings = run_on({"pkg/locked.py": CALL_CYCLE})
    assert any("cycle" in f.message for f in findings)
    joined = " ".join(f.message for f in findings)
    assert "Metrics._mlock" in joined and "Store._slock" in joined


def test_reacquisition_of_nonreentrant_lock():
    findings = run_on({"pkg/locked.py": REACQUIRE})
    assert len(findings) == 1
    assert "not reentrant" in findings[0].message


def test_await_while_holding_threading_lock():
    findings = run_on({"pkg/locked.py": AWAIT_UNDER_LOCK})
    assert len(findings) == 1
    assert "await while holding threading lock" in findings[0].message
    assert "Service._lock" in findings[0].message


def test_asyncio_lock_is_not_a_threading_lock():
    # async with on an asyncio.Lock must not count as holding a
    # thread mutex (asyncio.Lock is not in the lock factory set)
    assert run_on({"pkg/locked.py": ASYNC_LOCK_CLEAN}) == ()


def test_rule_ignores_out_of_scope_modules():
    assert run_on({"pkg/other.py": CYCLE}) == ()
