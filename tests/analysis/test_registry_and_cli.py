"""Rule registry semantics, the ``repro check`` CLI, and the acceptance gate."""

import json

import pytest

from repro.analysis import (
    Finding,
    Project,
    RuleNotFoundError,
    check_project,
    get_rule,
    register_rule,
    rule_names,
    rule_registry,
    run_check,
)
from repro.analysis.registry import _REGISTRY
from repro.cli import main

BUILTIN_RULES = ("async-safety", "determinism", "exception-flow",
                 "fingerprint-taint", "lock-discipline", "lock-order",
                 "registry-discipline", "serialization",
                 "vectorization-discipline")


def test_builtin_rules_registered():
    assert set(BUILTIN_RULES) <= set(rule_names())


def test_get_rule_instantiates_and_unknown_raises():
    rule = get_rule("determinism")
    assert rule.rule_id == "determinism"
    with pytest.raises(RuleNotFoundError):
        get_rule("no-such-rule")


def test_register_rule_duplicate_rejected_and_overwrite():
    @register_rule("tmp-rule")
    class TmpRule:
        def check(self, project):
            return []

    try:
        with pytest.raises(ValueError):
            @register_rule("tmp-rule")
            class OtherRule:
                def check(self, project):
                    return []

        @register_rule("tmp-rule", overwrite=True)
        class ReplacementRule:
            def check(self, project):
                return []

        assert rule_registry()["tmp-rule"] is ReplacementRule
    finally:
        _REGISTRY.pop("tmp-rule", None)


def test_custom_rule_runs_through_check_project():
    @register_rule("tmp-every-module")
    class EveryModuleRule:
        def check(self, project):
            return [Finding(rule="tmp-every-module", path=m.path, line=1,
                            message="seen") for m in project.modules]

    try:
        project = Project.from_sources({"a.py": "x = 1\n"})
        result = check_project(project, rules=["tmp-every-module"])
        assert [f.rule for f in result.findings] == ["tmp-every-module"]
    finally:
        _REGISTRY.pop("tmp-every-module", None)


def test_finding_round_trip_and_format():
    finding = Finding(rule="determinism", path="a.py", line=3,
                      message="msg", hint="fix it")
    assert Finding.from_dict(finding.to_dict()) == finding
    text = finding.format()
    assert "a.py:3" in text and "[determinism]" in text and "fix it" in text


# -- CLI -------------------------------------------------------------------

def test_cli_check_clean_tree_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("def f():\n    return 1\n")
    assert main(["check", str(target)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_check_findings_exit_one(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class S:\n"
        "    a: int = 0\n"
        "    def to_dict(self):\n"
        "        return {'a': self.a}\n"
    )
    assert main(["check", str(target)]) == 1
    out = capsys.readouterr().out
    assert "[serialization]" in out and "no from_dict" in out


def test_cli_check_rule_filter_and_json(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class S:\n"
        "    a: int = 0\n"
        "    def to_dict(self):\n"
        "        return {'a': self.a}\n"
    )
    # the violating rule filtered out: clean
    assert main(["check", "--rule", "determinism", str(target)]) == 0
    capsys.readouterr()
    # json format carries the structured findings
    assert main(["check", "--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "serialization"
    assert payload["findings"][0]["path"].endswith("bad.py")


def test_cli_check_unknown_rule_exits_two(tmp_path, capsys):
    assert main(["check", "--rule", "nope", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_check_unknown_rule_among_known_still_exits_two(tmp_path,
                                                            capsys):
    # a typo must not silently degrade to "run the rules that parsed"
    assert main(["check", "--rule", "determinism", "--rule", "determinsm",
                 str(tmp_path)]) == 2
    assert "determinsm" in capsys.readouterr().err


def test_cli_check_nonexistent_path_exits_two(tmp_path, capsys):
    missing = tmp_path / "no-such-dir"
    assert main(["check", str(missing)]) == 2
    err = capsys.readouterr().err
    assert "no such path" in err and "no-such-dir" in err


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in BUILTIN_RULES:
        assert name in out


# -- acceptance: the shipped tree stays clean ------------------------------

def test_repro_check_src_is_clean():
    """Acceptance gate: ``repro check src/`` exits 0 on the shipped tree."""
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    result = run_check([src])
    assert result.findings == (), "\n" + "\n".join(
        f.format() for f in result.findings)
    assert result.module_count > 50
