"""Each rule family fires on a violating fixture, stays silent on a clean one."""

from repro.analysis import CheckConfig, Project, check_project

#: scope every path-sensitive rule at the fixture tree
FIXTURE_CONFIG = CheckConfig(
    determinism_paths=("pkg/det.py",),
    async_paths=("pkg/svc/",),
    vectorization_paths=("pkg/vec.py",),
    registry_allowed_paths=("pkg/registry.py", "tests/"),
)


def run_on(sources, rule, config=FIXTURE_CONFIG):
    project = Project.from_sources(sources, config=config)
    return check_project(project, rules=[rule]).findings


# -- determinism -----------------------------------------------------------

DET_VIOLATION = """\
import json
import time
import uuid
import random
from dataclasses import dataclass, field

@dataclass
class Record:
    created: float = field(default_factory=time.time)

def fingerprint(payload):
    stamp = time.time()
    salt = uuid.uuid4().hex
    jitter = random.random()
    order = list({"b", "a"})
    for item in {"x", "y"}:
        pass
    return json.dumps(payload) + str((stamp, salt, jitter, order))
"""

DET_CLEAN = """\
import json
import random

def fingerprint(payload):
    rng = random.Random(17)
    order = sorted({"b", "a"})
    return json.dumps(payload, sort_keys=True) + str((rng.random(), order))
"""


def test_determinism_fires_on_violations():
    findings = run_on({"pkg/det.py": DET_VIOLATION}, "determinism")
    messages = "\n".join(f.message for f in findings)
    assert "time.time" in messages
    assert "uuid.uuid4" in messages
    assert "random.random" in messages
    assert "hash order" in messages  # list(set(...))
    assert "iteration over a set" in messages
    assert "sort_keys" in messages
    # the field(default_factory=time.time) reference is caught too
    assert any(f.line == 9 for f in findings if "time.time" in f.message)


def test_determinism_silent_on_clean_fixture():
    assert run_on({"pkg/det.py": DET_CLEAN}, "determinism") == ()


def test_determinism_scoped_to_configured_paths():
    # same violating source outside the declared path set: no findings
    assert run_on({"pkg/other.py": DET_VIOLATION}, "determinism") == ()


# -- serialization ---------------------------------------------------------

SER_MISSING_FROM_DICT = """\
from dataclasses import dataclass

@dataclass
class Snapshot:
    a: int = 0

    def to_dict(self):
        return {"a": self.a}
"""

SER_KEY_DRIFT = """\
from dataclasses import dataclass, field

@dataclass
class Spec:
    a: int = 0
    b: int = 0
    hidden: object = field(default=None, repr=False)

    def to_dict(self):
        out = {"a": self.a}
        out["extra"] = 1
        return out

    @classmethod
    def from_dict(cls, data):
        return cls(a=data["a"], b=data["renamed"])
"""

SER_CLEAN = """\
from dataclasses import dataclass, field

@dataclass
class Spec:
    a: int = 0
    b: int = 0
    hidden: object = field(default=None, repr=False)

    def to_dict(self):
        return {"a": self.a, "b": self.b}

    @classmethod
    def from_dict(cls, data):
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)
"""


def test_serialization_missing_from_dict():
    findings = run_on({"pkg/ser.py": SER_MISSING_FROM_DICT}, "serialization")
    assert len(findings) == 1
    assert "no from_dict" in findings[0].message


def test_serialization_key_and_field_drift():
    findings = run_on({"pkg/ser.py": SER_KEY_DRIFT}, "serialization")
    messages = [f.message for f in findings]
    # emitted but never read back
    assert any("'extra'" in m and "never reads" in m for m in messages)
    # required but never emitted
    assert any("'renamed'" in m and "never emits" in m for m in messages)
    # dataclass field dropped by to_dict
    assert any("Spec.b" in m and "never emitted" in m for m in messages)
    # runtime-only (repr=False) field is exempt
    assert not any("hidden" in m for m in messages)


def test_serialization_silent_on_clean_wildcard_from_dict():
    assert run_on({"pkg/ser.py": SER_CLEAN}, "serialization") == ()


def test_serialization_skips_delegating_to_dict():
    source = """\
from dataclasses import dataclass

def spec_to_dict(spec):
    return {"a": spec.a}

@dataclass
class Spec:
    a: int = 0

    def to_dict(self):
        return spec_to_dict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(a=data["a"])
"""
    assert run_on({"pkg/ser.py": source}, "serialization") == ()


# -- async-safety ----------------------------------------------------------

ASYNC_VIOLATION = """\
import time

class Handler:
    async def handle(self):
        time.sleep(1)
        data = open("f.json").read()
        report = self.cache.load("key")
        return data, report
"""

ASYNC_CLEAN = """\
import asyncio

class Handler:
    async def handle(self, loop):
        await asyncio.sleep(1)
        # passing the blocking callable to the executor is the pattern
        record = await loop.run_in_executor(None, self.submit, "job")
        def sync_helper():
            return open("f.json").read()  # runs in the worker
        return record
"""


def test_async_safety_fires_on_blocking_calls():
    findings = run_on({"pkg/svc/h.py": ASYNC_VIOLATION}, "async-safety")
    messages = [f.message for f in findings]
    assert any("time.sleep" in m for m in messages)
    assert any("open" in m for m in messages)
    assert any("self.cache.load" in m for m in messages)


def test_async_safety_silent_on_executor_pattern():
    assert run_on({"pkg/svc/h.py": ASYNC_CLEAN}, "async-safety") == ()


def test_async_safety_scoped_to_configured_paths():
    assert run_on({"pkg/web.py": ASYNC_VIOLATION}, "async-safety") == ()


# -- lock-discipline -------------------------------------------------------

LOCK_VIOLATION = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def get(self, key):
        return self._items.get(key)

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
"""

LOCK_CLEAN = LOCK_VIOLATION.replace(
    "    def get(self, key):\n        return self._items.get(key)",
    "    def get(self, key):\n        with self._lock:\n"
    "            return self._items.get(key)")

LOCK_MODULE_VIOLATION = """\
import threading

_LOCK = threading.Lock()
_CACHE = {}

def put(key, value):
    _CACHE[key] = value
"""


def test_lock_discipline_fires_on_unlocked_access():
    findings = run_on({"pkg/reg.py": LOCK_VIOLATION}, "lock-discipline")
    assert len(findings) == 1
    assert "self._items" in findings[0].message
    assert "Registry.get" in findings[0].message


def test_lock_discipline_silent_when_guarded():
    assert run_on({"pkg/reg.py": LOCK_CLEAN}, "lock-discipline") == ()


def test_lock_discipline_module_level_state():
    findings = run_on({"pkg/mod.py": LOCK_MODULE_VIOLATION},
                      "lock-discipline")
    assert len(findings) == 1
    assert "_CACHE" in findings[0].message


def test_lock_discipline_ignores_lockless_classes():
    source = """\
class Plain:
    def __init__(self):
        self._items = {}

    def get(self, key):
        return self._items.get(key)
"""
    assert run_on({"pkg/p.py": source}, "lock-discipline") == ()


def test_lock_discipline_dataclass_field_lock():
    source = """\
import threading
from dataclasses import dataclass, field

@dataclass
class Ledger:
    _lock: threading.Lock = field(default_factory=threading.Lock)
    counts: dict = field(default_factory=dict)

    def bump(self, name):
        self.counts[name] = self.counts.get(name, 0) + 1
"""
    findings = run_on({"pkg/l.py": source}, "lock-discipline")
    assert findings and all("self.counts" in f.message for f in findings)


# -- vectorization-discipline ----------------------------------------------

VEC_VIOLATION = """\
import numpy as np

def tune(menu):
    out = []
    for row in menu:
        out.append(row * 2)
    i = 0
    while i < len(menu):
        i += 1
    return out
"""

VEC_REFERENCE_PATH = """\
import numpy as np

def _interpreted_rows(menu):
    # the engine="interpreted" reference path may loop by design
    for row in menu:
        yield row * 2

class Engine:
    def interpreted_pass(self, menu):
        total = 0.0
        for row in menu:
            total += row
        return total

def tune(menu):
    return np.asarray(menu) * 2
"""

VEC_SUPPRESSED = """\
def tune(menu, groups):
    # repro: allow[vectorization-discipline] iterates option groups, not rows
    for group in groups:
        pass
    return menu
"""


def test_vectorization_fires_on_menu_loops():
    findings = run_on({"pkg/vec.py": VEC_VIOLATION},
                      "vectorization-discipline")
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("'for' loop" in m for m in messages)
    assert any("'while' loop" in m for m in messages)
    assert all("columnar arrays" in m for m in messages)


def test_vectorization_exempts_interpreted_reference_functions():
    # loops inside *interpret* functions (incl. nested statements) are
    # the sanctioned reference path; the vectorized code stays silent
    assert run_on({"pkg/vec.py": VEC_REFERENCE_PATH},
                  "vectorization-discipline") == ()


def test_vectorization_scoped_to_configured_paths():
    assert run_on({"pkg/other.py": VEC_VIOLATION},
                  "vectorization-discipline") == ()


def test_vectorization_respects_allow_comment():
    assert run_on({"pkg/vec.py": VEC_SUPPRESSED},
                  "vectorization-discipline") == ()


def test_vectorization_unused_suppression_is_flagged():
    source = """\
def tune(menu):
    # repro: allow[vectorization-discipline] nothing to allow here
    return menu
"""
    findings = run_on({"pkg/vec.py": source}, "vectorization-discipline")
    assert len(findings) == 1
    assert findings[0].rule == "unused-suppression"


# -- registry-discipline ---------------------------------------------------

REGISTRY_SOURCES = {
    "pkg/registry.py": """\
def register_solver(name):
    def deco(cls):
        return cls
    return deco
""",
    "pkg/impls.py": """\
from pkg.registry import register_solver

@register_solver("alpha")
class AlphaSolver:
    pass
""",
    "pkg/caller.py": """\
from pkg.impls import AlphaSolver

def run():
    return AlphaSolver()
""",
}


def test_registry_discipline_fires_on_direct_import():
    findings = run_on(REGISTRY_SOURCES, "registry-discipline")
    assert len(findings) == 1
    assert findings[0].path == "pkg/caller.py"
    assert "AlphaSolver" in findings[0].message


def test_registry_discipline_allows_configured_paths():
    sources = dict(REGISTRY_SOURCES)
    sources["tests/test_alpha.py"] = sources.pop("pkg/caller.py")
    assert run_on(sources, "registry-discipline") == ()


def test_registry_discipline_allows_defining_module():
    sources = {k: v for k, v in REGISTRY_SOURCES.items()
               if k != "pkg/caller.py"}
    assert run_on(sources, "registry-discipline") == ()


# -- cross-cutting ---------------------------------------------------------

def test_parse_error_is_reported_not_raised():
    findings = run_on({"pkg/bad.py": "def broken(:\n"}, "determinism")
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"


def test_findings_sorted_by_location():
    sources = {
        "pkg/det.py": DET_VIOLATION,
        "pkg/a.py": "def broken(:\n",
    }
    findings = run_on(sources, "determinism")
    assert [f.path for f in findings] == sorted(f.path for f in findings)
