"""SARIF 2.1.0 output: schema validity and content mapping."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import CheckConfig, Project, check_project, to_sarif

jsonschema = pytest.importorskip("jsonschema")

SRC = Path(__file__).resolve().parents[2] / "src"

#: A faithful subset of the official SARIF 2.1.0 schema (oasis-tcs/
#: sarif-spec) covering everything ``to_sarif`` emits. Kept inline so
#: the test needs no network; ``additionalProperties`` stays permissive
#: exactly where the full schema is, and required fields / enums match
#: the spec.
SARIF_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {"enum": [
                                                            "none", "note",
                                                            "warning",
                                                            "error",
                                                        ]},
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "columnKind": {"enum": [
                        "utf16CodeUnits", "unicodeCodePoints"]},
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0},
                                "level": {"enum": [
                                    "none", "note", "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type":
                                                                    "string"},
                                                            "uriBaseId": {
                                                                "type":
                                                                "string"},
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

VIOLATION = """\
import time

def fingerprint(payload):
    return hash(payload)

def build_key(job):
    stamp = time.time()
    return fingerprint(stamp)
"""


def result_with_findings():
    config = CheckConfig(taint_paths=("pkg/fp.py",))
    project = Project.from_sources({"pkg/fp.py": VIOLATION}, config=config)
    return check_project(project, rules=["fingerprint-taint"])


def test_sarif_with_findings_validates_against_schema():
    log = to_sarif(result_with_findings())
    jsonschema.validate(log, SARIF_SCHEMA)
    (run,) = log["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "fingerprint-taint"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "pkg/fp.py"
    assert location["region"]["startLine"] == 8
    # ruleIndex points at the matching descriptor
    rules = run["tool"]["driver"]["rules"]
    assert rules[result["ruleIndex"]]["id"] == "fingerprint-taint"


def test_sarif_clean_run_still_lists_rules():
    config = CheckConfig(taint_paths=("pkg/fp.py",))
    project = Project.from_sources(
        {"pkg/fp.py": "def f():\n    return 1\n"}, config=config)
    log = to_sarif(check_project(project, rules=["fingerprint-taint"]))
    jsonschema.validate(log, SARIF_SCHEMA)
    assert log["runs"][0]["results"] == []
    assert [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]] \
        == ["fingerprint-taint"]


def test_sarif_round_trips_as_json():
    log = to_sarif(result_with_findings())
    assert json.loads(json.dumps(log, sort_keys=True)) == log


def test_cli_format_sarif_end_to_end(tmp_path):
    target = tmp_path / "fp.py"
    target.write_text("def f():\n    return 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--format", "sarif",
         str(target)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    log = json.loads(proc.stdout)
    jsonschema.validate(log, SARIF_SCHEMA)
    assert log["version"] == "2.1.0"
