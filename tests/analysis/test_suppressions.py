"""Suppression syntax: allow-comments silence findings, stale allows surface."""

from repro.analysis import (
    UNUSED_RULE_ID,
    CheckConfig,
    Project,
    check_project,
)

CONFIG = CheckConfig(determinism_paths=("pkg/det.py",),
                     async_paths=("pkg/svc/",),
                     registry_allowed_paths=("tests/",))


def run(source, rules=None, path="pkg/det.py"):
    project = Project.from_sources({path: source}, config=CONFIG)
    return check_project(project, rules=rules).findings


def test_trailing_suppression_silences_own_line():
    source = (
        "import time\n"
        "NOW = time.time()  # repro: allow[determinism] display only\n"
    )
    assert run(source, rules=["determinism"]) == ()


def test_comment_line_suppression_guards_next_line():
    source = (
        "import time\n"
        "# repro: allow[determinism] display only\n"
        "NOW = time.time()\n"
    )
    assert run(source, rules=["determinism"]) == ()


def test_unsuppressed_line_still_fires():
    source = (
        "import time\n"
        "NOW = time.time()  # repro: allow[determinism] display only\n"
        "LATER = time.time()\n"
    )
    findings = run(source, rules=["determinism"])
    assert len(findings) == 1
    assert findings[0].line == 3


def test_comma_separated_rule_ids():
    source = (
        "import time\n"
        "# repro: allow[determinism, lock-discipline] both\n"
        "NOW = time.time()\n"
    )
    findings = run(source, rules=["determinism", "lock-discipline"])
    # determinism is used; the lock-discipline half is stale
    assert [f.rule for f in findings] == [UNUSED_RULE_ID]
    assert "lock-discipline" in findings[0].message


def test_unused_suppression_reported():
    source = (
        "import json\n"
        "DATA = json.dumps({}, sort_keys=True)  "
        "# repro: allow[determinism] stale\n"
    )
    findings = run(source, rules=["determinism"])
    assert len(findings) == 1
    assert findings[0].rule == UNUSED_RULE_ID
    assert findings[0].line == 2


def test_unused_suppression_not_reported_for_inactive_rule():
    # --rule filtering must not flag allows of rules that did not run
    source = (
        "import time\n"
        "NOW = time.time()  # repro: allow[determinism] display only\n"
    )
    assert run(source, rules=["lock-discipline"]) == ()


def test_unused_suppression_cannot_be_suppressed():
    source = (
        "import json\n"
        "# repro: allow[unused-suppression] nice try\n"
        "DATA = json.dumps({}, sort_keys=True)  "
        "# repro: allow[determinism] stale\n"
    )
    findings = run(source, rules=["determinism"])
    rules = sorted(f.rule for f in findings)
    # both the stale determinism allow AND the allow[unused-suppression]
    # itself are reported
    assert rules == [UNUSED_RULE_ID, UNUSED_RULE_ID]


def test_suppression_inside_string_literal_is_ignored():
    source = (
        "import time\n"
        'DOC = "# repro: allow[determinism] not a comment"\n'
        "NOW = time.time()\n"
    )
    findings = run(source, rules=["determinism"])
    assert [f.rule for f in findings] == ["determinism"]
