"""fingerprint-taint rule: laundered nondeterminism reaching key sinks."""

from repro.analysis import CheckConfig, Project, check_project

CONFIG = CheckConfig(taint_paths=("pkg/fp.py",))


def run_on(sources, config=CONFIG):
    project = Project.from_sources(sources, config=config)
    return check_project(project, rules=["fingerprint-taint"]).findings


#: the ISSUE's seeded fixture: wall-clock -> intermediate -> fingerprint
TAINT_VIOLATION = """\
import time

def fingerprint(payload):
    return hash(payload)

def build_key(job):
    stamp = time.time()
    salted = {"job": job, "at": stamp}
    return fingerprint(salted)
"""

#: identical flow shape, but the only taint is hash-order and the
#: intermediate passes through sorted(): laundered, no finding
TAINT_SANITIZED = """\
def fingerprint(payload):
    return hash(payload)

def build_key(job, tags):
    order = sorted(set(tags))
    salted = {"job": job, "tags": order}
    return fingerprint(salted)
"""

TAINT_CLEAN = """\
import json

def fingerprint(payload):
    return hash(payload)

def build_key(job):
    salted = {"job": job, "version": 3}
    return fingerprint(json.dumps(salted, sort_keys=True))
"""


def test_wall_clock_through_local_into_fingerprint_is_caught():
    findings = run_on({"pkg/fp.py": TAINT_VIOLATION})
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "fingerprint-taint"
    assert "wall-clock" in finding.message
    assert "fingerprint" in finding.message
    assert finding.line == 9  # the fingerprint(salted) call site


def test_sorted_sanitized_flow_is_not_caught():
    assert run_on({"pkg/fp.py": TAINT_SANITIZED}) == ()


def test_clean_fixture_passes():
    assert run_on({"pkg/fp.py": TAINT_CLEAN}) == ()


def test_unsanitized_set_order_is_caught():
    source = TAINT_SANITIZED.replace("sorted(set(tags))", "list(set(tags))")
    findings = run_on({"pkg/fp.py": source})
    assert len(findings) == 1
    assert "hash-order" in findings[0].message


def test_entropy_flow_through_fstring_is_caught():
    source = (
        "import uuid\n"
        "def fingerprint(payload):\n"
        "    return hash(payload)\n"
        "def build_key(job):\n"
        "    run_id = uuid.uuid4().hex\n"
        "    label = f'{job}-{run_id}'\n"
        "    return fingerprint(label)\n")
    findings = run_on({"pkg/fp.py": source})
    assert len(findings) == 1
    assert "entropy" in findings[0].message


def test_one_level_call_graph_propagation():
    # the source is inside a helper in ANOTHER module; its return value
    # feeds the fingerprint call one level up
    helper = (
        "import time\n"
        "def now_ms():\n"
        "    return int(time.time() * 1000)\n")
    user = (
        "from pkg.helper import now_ms\n"
        "def fingerprint(payload):\n"
        "    return hash(payload)\n"
        "def build_key(job):\n"
        "    stamp = now_ms()\n"
        "    return fingerprint((job, stamp))\n")
    findings = run_on({"pkg/helper.py": helper, "pkg/fp.py": user})
    assert len(findings) == 1
    assert "via now_ms()" in findings[0].message
    assert findings[0].path == "pkg/fp.py"


def test_json_dumps_and_memo_sinks():
    source = (
        "import json, time\n"
        "def serialize(payload, memo):\n"
        "    stamp = time.time()\n"
        "    blob = json.dumps({'at': stamp}, sort_keys=True)\n"
        "    memo.store(stamp, payload)\n"
        "    return blob\n")
    findings = run_on({"pkg/fp.py": source})
    sinks = {f.message.split("flows into ")[1] for f in findings}
    assert sinks == {"json.dumps()", "memo.store()"}


def test_suppression_silences_a_deliberate_flow():
    source = (
        "import time\n"
        "def fingerprint(payload):\n"
        "    return hash(payload)\n"
        "def build_key(job):\n"
        "    stamp = time.time()\n"
        "    return fingerprint(stamp)  "
        "# repro: allow[fingerprint-taint] test fixture\n")
    project = Project.from_sources({"pkg/fp.py": source}, config=CONFIG)
    result = check_project(project, rules=["fingerprint-taint"])
    assert result.findings == ()
    assert result.suppression_count == 1
