"""PlanCache under concurrent readers and writers.

The `repro serve` daemon shares one cache across its worker pool (and
potentially across daemon processes pointed at the same directory), so
stores must be atomic: a reader may see a miss or a complete entry,
never a torn/partial file, and concurrent writers of the same key must
not clobber each other's in-progress temp files.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import PlanCache, SolveReport, TuningJob

JOB = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=2, global_batch=16,
                scale="smoke")


def _report(job: TuningJob, throughput: float) -> SolveReport:
    return SolveReport(solver="mist", job=job,
                       measured={"throughput": throughput})


@pytest.fixture()
def cache(tmp_path):
    return PlanCache(tmp_path / "plans")


def _run_threads(workers):
    errors = []

    def guard(fn):
        def run():
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)
        return run

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestConcurrentAccess:
    def test_same_key_many_writers_many_readers(self, cache):
        versions = [float(i + 1) for i in range(8)]
        seen = []

        def writer(value):
            return lambda: [cache.store(_report(JOB, value))
                            for _ in range(20)]

        def reader():
            for _ in range(60):
                report = cache.load(JOB, "mist")
                if report is not None:
                    seen.append(report.throughput)

        _run_threads([writer(v) for v in versions] + [reader] * 4)

        # every observed value is a complete write, never a torn one
        assert set(seen) <= set(versions)
        # the surviving entry is one complete, parseable report
        final = cache.load(JOB, "mist")
        assert final is not None
        assert final.throughput in versions
        assert final.from_cache is True

    def test_distinct_keys_do_not_interfere(self, cache):
        jobs = [JOB.with_(global_batch=16 * (i + 1)) for i in range(6)]

        def writer(job, value):
            return lambda: [cache.store(_report(job, value))
                            for _ in range(10)]

        _run_threads([writer(job, float(i)) for i, job in enumerate(jobs)])

        for i, job in enumerate(jobs):
            report = cache.load(job, "mist")
            assert report is not None
            assert report.throughput == float(i)

    def test_no_temp_droppings_after_store(self, cache):
        _run_threads([lambda: cache.store(_report(JOB, 1.0))
                      for _ in range(8)])
        leftovers = [p for p in cache.root.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []

    def test_reader_during_writes_never_crashes_on_corruption(self, cache):
        # an unrelated writer dropping garbage alongside real entries
        # must degrade to a miss, not an exception
        path = cache.path_for(JOB, "mist")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{torn json")
        assert cache.load(JOB, "mist") is None
        cache.store(_report(JOB, 2.0))
        assert cache.load(JOB, "mist").throughput == 2.0
        json.loads(path.read_text())  # and the file on disk is valid JSON
