"""Heterogeneous clusters through the declarative API."""

import warnings

import pytest

from repro.api import JobValidationError, SolveReport, TuningJob, solve
from repro.hardware import HeterogeneousCluster

MIXED = {
    "groups": [
        {"name": "a100", "gpu": "A100-40GB", "num_nodes": 1,
         "gpus_per_node": 2},
        {"name": "l4", "gpu": "L4", "num_nodes": 1, "gpus_per_node": 2},
    ],
    "inter_group_bandwidth_gbps": 100,
}


def hetero_job(**overrides) -> TuningJob:
    defaults = dict(model="gpt3-1.3b", global_batch=16, scale="smoke",
                    interference="none")
    defaults.update(overrides)
    return TuningJob.for_cluster(MIXED, **defaults)


class TestJobSerialization:
    def test_for_cluster_derives_shape(self):
        job = hetero_job()
        assert job.num_gpus == 4
        assert job.gpu == "A100-40GB"  # first group, for display
        assert job.cluster is not None

    def test_round_trip(self):
        job = hetero_job()
        again = TuningJob.from_json(job.to_json())
        assert again == job
        assert again.fingerprint() == job.fingerprint()

    def test_resolved_cluster_is_heterogeneous(self):
        cluster = hetero_job().resolved_cluster()
        assert isinstance(cluster, HeterogeneousCluster)
        assert cluster.group_names == ("a100", "l4")

    def test_plain_jobs_keep_dict_shape_and_fingerprint(self):
        plain = TuningJob(model="gpt3-1.3b", num_gpus=2, global_batch=16)
        assert "cluster" not in plain.to_dict()
        # cluster-less fingerprints must not shift with the new field
        assert plain.fingerprint() == TuningJob.from_dict(
            plain.to_dict()).fingerprint()

    def test_cluster_gpu_count_mismatch_rejected(self):
        with pytest.raises(JobValidationError, match="num_gpus"):
            TuningJob(model="gpt3-1.3b", num_gpus=8, global_batch=16,
                      cluster=MIXED)

    def test_invalid_cluster_dict_rejected(self):
        with pytest.raises(JobValidationError, match="invalid cluster"):
            TuningJob(model="gpt3-1.3b", num_gpus=4, global_batch=16,
                      cluster={"groups": [{"gpu": "no-such-gpu",
                                           "gpus_per_node": 4}]})

    def test_workload_threads_cluster_through(self):
        spec = hetero_job().workload
        assert spec.cluster_dict is not None
        assert isinstance(spec.cluster, HeterogeneousCluster)
        rebuilt = TuningJob.from_workload(spec, scale="smoke",
                                          interference="none")
        assert rebuilt.cluster == spec.cluster_dict


class TestSolvers:
    @pytest.fixture(scope="class")
    def mist_report(self):
        return solve(hetero_job(), solver="mist")

    def test_mist_solves_natively(self, mist_report):
        assert mist_report.plan is not None
        tags = {s.device_group for s in mist_report.plan.stages}
        assert tags == {"a100", "l4"}
        assert mist_report.measured  # executed on the mixed fleet

    def test_plan_fits_every_groups_device(self, mist_report):
        cluster = hetero_job().resolved_cluster()
        mist_report.plan.validate(
            hetero_job().workload.model, cluster)
        assert mist_report.measured["peak_memory"] > 0

    def test_report_round_trips(self, mist_report):
        again = SolveReport.from_json(mist_report.to_json())
        assert again.to_json() == mist_report.to_json()
        assert again.plan == mist_report.plan

    def test_baseline_falls_back_with_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = solve(hetero_job(), solver="megatron")
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert any("worst-GPU homogeneous" in m for m in messages)
        assert report.extra.get("heterogeneous_fallback") == "2x2xL4"
        assert report.plan is not None

    def test_uniform_baseline_falls_back_too(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = solve(hetero_job(), solver="uniform")
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        assert report.extra.get("heterogeneous_fallback") == "2x2xL4"

    def test_homogeneous_jobs_warn_nothing(self):
        job = TuningJob(model="gpt3-1.3b", num_gpus=2, global_batch=8,
                        scale="smoke", interference="none")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve(job, solver="megatron")
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
