"""Tests for declarative TuningJob serialization and resolution."""

import pytest

from repro.api import JobValidationError, TuningJob
from repro.core import SPACE_MIST, SPACE_3D, space_ref, space_to_dict
from repro.evaluation import SCALES, WorkloadSpec, scale_ref, scale_to_dict

JOB = TuningJob(model="gpt3-1.3b", num_gpus=2, global_batch=32,
                scale="smoke", parallelism=2)


class TestRoundTrip:
    def test_json_round_trip(self):
        assert TuningJob.from_json(JOB.to_json()) == JOB

    def test_json_round_trip_byte_identical(self):
        text = JOB.to_json()
        assert TuningJob.from_json(text).to_json() == text

    def test_inlined_space_round_trip(self):
        custom = SPACE_MIST.with_(name="custom", layer_slack=3)
        job = JOB.with_(space=space_to_dict(custom))
        again = TuningJob.from_json(job.to_json())
        assert again.resolved_space() == custom

    def test_inlined_scale_round_trip(self):
        custom = scale_to_dict(SCALES["quick"])
        custom["name"] = "custom"
        job = JOB.with_(scale=custom)
        assert TuningJob.from_json(job.to_json()).resolved_scale().name \
            == "custom"

    def test_from_dict_ignores_unknown_fields(self):
        data = JOB.to_dict()
        data["someday_a_new_field"] = 1
        assert TuningJob.from_dict(data) == JOB


class TestFingerprint:
    def test_stable_across_round_trip(self):
        assert TuningJob.from_json(JOB.to_json()).fingerprint() \
            == JOB.fingerprint()

    def test_sensitive_to_workload(self):
        assert JOB.with_(global_batch=64).fingerprint() != JOB.fingerprint()
        assert JOB.with_(space="3d").fingerprint() != JOB.fingerprint()

    def test_parallelism_excluded(self):
        # worker count changes speed, never the answer -> same cache key
        assert JOB.with_(parallelism=8).fingerprint() == JOB.fingerprint()


class TestResolution:
    def test_workload(self):
        spec = JOB.workload
        assert isinstance(spec, WorkloadSpec)
        assert spec.model_spec == "gpt3-1.3b"
        assert spec.cluster.total_gpus == 2

    def test_from_workload_inverse(self):
        spec = JOB.workload
        assert TuningJob.from_workload(spec, scale="smoke",
                                       parallelism=2) == JOB

    def test_named_space_and_scale(self):
        assert JOB.resolved_space() == SPACE_MIST
        assert JOB.with_(space="3d").resolved_space() == SPACE_3D
        assert JOB.resolved_scale() == SCALES["smoke"]

    def test_space_ref_prefers_slug(self):
        assert space_ref(SPACE_MIST) == "mist"
        assert isinstance(space_ref(SPACE_MIST.with_(name="x")), dict)
        assert scale_ref(SCALES["full"]) == "full"

    def test_unknown_space_rejected(self):
        with pytest.raises(KeyError):
            JOB.with_(space="galaxy").resolved_space()


class TestValidation:
    def test_bad_fields_rejected(self):
        with pytest.raises(JobValidationError):
            JOB.with_(num_gpus=0)
        with pytest.raises(JobValidationError):
            JOB.with_(global_batch=0)
        with pytest.raises(JobValidationError):
            JOB.with_(parallelism=-1)
        with pytest.raises(JobValidationError):
            JOB.with_(interference="sometimes")
