"""Tests for the solver registry and the cache-aware solve() helper."""

import pytest

from repro.api import (
    PlanCache,
    SolveReport,
    SolverNotFoundError,
    TuningJob,
    get_solver,
    register_solver,
    solve,
    solver_names,
    solver_registry,
)
from repro.core import StageConfig, TrainingPlan

JOB = TuningJob(model="gpt3-1.3b", num_gpus=2, global_batch=16,
                scale="smoke")


class TestRegistry:
    def test_builtin_solvers_registered(self):
        names = solver_names()
        for expected in ("mist", "megatron", "deepspeed", "aceso",
                         "uniform"):
            assert expected in names

    def test_unknown_solver_error(self):
        with pytest.raises(SolverNotFoundError) as err:
            get_solver("alpa")
        assert "alpa" in str(err.value)
        assert "mist" in str(err.value)  # lists the options

    def test_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_solver("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_solver("mist")
            class Impostor:
                def solve(self, job):  # pragma: no cover
                    raise NotImplementedError

    def test_registry_snapshot_is_a_copy(self):
        snapshot = solver_registry()
        snapshot["bogus"] = object
        assert "bogus" not in solver_names()


def _dummy_report(job: TuningJob, solver: str) -> SolveReport:
    plan = TrainingPlan(
        global_batch=job.global_batch, gacc=1,
        stages=(StageConfig(layers=24, microbatch=job.global_batch,
                            dp=1, tp=2),),
        source=solver,
    )
    return SolveReport(solver=solver, job=job, plan=plan,
                       measured={"throughput": 1.0})


class TestSolveAndCache:
    def test_custom_solver_through_registry(self):
        @register_solver("test-dummy", overwrite=True)
        class Dummy:
            def solve(self, job):
                return _dummy_report(job, "test-dummy")

        report = solve(JOB, "test-dummy")
        assert report.solver == "test-dummy"
        assert report.found

    def test_cache_round_trip(self, tmp_path):
        @register_solver("test-counting", overwrite=True)
        class Counting:
            calls = 0

            def solve(self, job):
                type(self).calls += 1
                return _dummy_report(job, "test-counting")

        cache = PlanCache(tmp_path)
        first = solve(JOB, "test-counting", cache=cache)
        second = solve(JOB, "test-counting", cache=cache)
        assert Counting.calls == 1
        assert not first.from_cache and second.from_cache
        assert second.plan == first.plan
        assert second.to_json() == first.to_json()

    def test_cache_miss_on_different_job(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.store(_dummy_report(JOB, "test-dummy"))
        assert cache.load(JOB.with_(global_batch=64), "test-dummy") is None
        assert cache.load(JOB, "other-solver") is None

    def test_corrupt_cache_entry_ignored(self, tmp_path):
        cache = PlanCache(tmp_path)
        path = cache.store(_dummy_report(JOB, "test-dummy"))
        path.write_text("{not json")
        assert cache.load(JOB, "test-dummy") is None

    def test_clear(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.store(_dummy_report(JOB, "test-dummy"))
        assert cache.clear() == 1
        assert cache.load(JOB, "test-dummy") is None


class TestReportSerialization:
    def test_byte_identical_round_trip(self):
        report = _dummy_report(JOB, "test-dummy")
        text = report.to_json()
        again = SolveReport.from_json(text)
        assert again.to_json() == text
        assert again.plan == report.plan

    def test_planless_report_round_trips(self):
        report = SolveReport(solver="s", job=JOB)
        again = SolveReport.from_json(report.to_json())
        assert not again.found
        assert again.to_json() == report.to_json()

    def test_runtime_fields_not_serialized(self):
        report = _dummy_report(JOB, "test-dummy")
        report.from_cache = True
        report.result = object()
        assert "from_cache" not in report.to_dict()
        again = SolveReport.from_json(report.to_json())
        assert again.result is None and not again.from_cache

    def test_non_finite_values_rejected(self):
        # reports must parse under strict JSON (jq, JSON.parse): a
        # stray inf must fail loudly at serialization, not emit the
        # non-standard `Infinity` token
        report = _dummy_report(JOB, "test-dummy")
        report.search_log = [{"objective": float("inf")}]
        with pytest.raises(ValueError):
            report.to_json()
