"""repro.api.replan: delta'd jobs, provenance, cache interplay.

The API layer's contract on top of the core warm-start: the delta'd
job is an explicit-cluster job (warm and cold share one fingerprint),
the replanned report carries a ``replan`` provenance block in
``extra``, results land in the plan cache under the post-delta
fingerprint, and the incumbent is resolved from — in priority order —
an explicit plan, a SolveReport, or the cache entry of the base job.
"""

import pytest

from repro.api import PlanCache, TuningJob, delta_job, replan, solve
from repro.hardware import ClusterDelta

JOB = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=4, global_batch=16,
                scale="smoke", interference="none")
DELTA = ClusterDelta.degrade_link(0.5)


class TestDeltaJob:
    def test_fingerprint_shared_by_warm_and_cold(self):
        # whoever solves the delta'd cluster — warm replan or plain
        # cold submit — must land on the same cache key
        a = delta_job(JOB, DELTA)
        b = delta_job(JOB, DELTA)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != JOB.fingerprint()

    def test_accepts_dict_delta(self):
        a = delta_job(JOB, DELTA.to_dict())
        assert a.fingerprint() == delta_job(JOB, DELTA).fingerprint()

    def test_workload_carried_over(self):
        out = delta_job(JOB, DELTA)
        assert out.model == JOB.model
        assert out.global_batch == JOB.global_batch
        assert out.scale == JOB.scale


class TestReplan:
    def test_explicit_incumbent_warm(self, tmp_path):
        base = solve(JOB, "mist", cache=PlanCache(tmp_path / "a"))
        report = replan(JOB, DELTA, incumbent=base.plan)
        extra = report.extra["replan"]
        assert extra["warm"] is True
        assert extra["incumbent"] == "explicit"
        assert extra["base_fingerprint"] == JOB.fingerprint()
        assert extra["delta"] == DELTA.to_dict()
        assert extra["describe"] == DELTA.describe()
        assert report.plan is not None

    def test_report_incumbent_warm(self, tmp_path):
        base = solve(JOB, "mist", cache=PlanCache(tmp_path / "a"))
        report = replan(JOB, DELTA, incumbent=base)
        assert report.extra["replan"]["incumbent"] == "report"
        assert report.extra["replan"]["warm"] is True

    def test_cache_incumbent_warm(self, tmp_path):
        cache = PlanCache(tmp_path / "cache")
        solve(JOB, "mist", cache=cache)
        report = replan(JOB, DELTA, cache=cache)
        assert report.extra["replan"]["incumbent"] == "cache"
        assert report.extra["replan"]["warm"] is True

    def test_no_incumbent_falls_back_cold(self):
        report = replan(JOB, DELTA)
        extra = report.extra["replan"]
        assert extra["warm"] is False
        assert extra["incumbent"] == "none"
        assert report.plan is not None

    def test_warm_matches_cold_at_api_level(self, tmp_path):
        base = solve(JOB, "mist", cache=PlanCache(tmp_path / "a"))
        warm = replan(JOB, DELTA, incumbent=base.plan)
        # MistSolver.replan pins keep_top=1 (only the winner executes),
        # so the cold reference job must be built the same way
        import dataclasses
        cold_job = dataclasses.replace(delta_job(JOB, DELTA), keep_top=1)
        cold = solve(cold_job, "mist")
        assert warm.plan == cold.plan

    def test_result_cached_under_post_delta_fingerprint(self, tmp_path):
        cache = PlanCache(tmp_path / "cache")
        solve(JOB, "mist", cache=cache)
        first = replan(JOB, DELTA, cache=cache)
        assert cache.load(delta_job(JOB, DELTA), "mist") is not None
        second = replan(JOB, DELTA, cache=cache)
        assert second.extra["replan"]["incumbent"] == "cache-hit"
        assert second.extra["replan"]["warm"] is False
        assert second.plan == first.plan
