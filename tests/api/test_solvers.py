"""End-to-end solver tests: Mist + baselines through the unified API.

Includes the acceptance tests for the parallel (S, G) search: fanning
the outer loop across workers must return the *identical* best plan as
the serial path, on more than one workload.
"""

import pytest

from repro.api import SolveReport, TuningJob, get_solver, solve
from repro.core import MistTuner, SPACE_MIST
from repro.evaluation import calibrated_interference
from repro.hardware import make_cluster
from repro.models import get_model

#: two distinct workloads for the parallel-equivalence acceptance test
WORKLOADS = [
    ("gpt3-1.3b", 1, 2, 16, 2048),
    ("gpt3-2.7b", 1, 4, 32, 1024),
]


def _make_tuner(model_spec, nodes, gpus, seq_len):
    model = get_model(model_spec)
    cluster = make_cluster("L4", nodes, gpus)
    return MistTuner(
        model, cluster, seq_len=seq_len, space=SPACE_MIST,
        interference=calibrated_interference(True),
        max_pareto_points=3, max_gacc_candidates=2,
    )


class TestParallelSearch:
    @pytest.mark.parametrize(
        "model_spec,nodes,gpus,batch,seq_len", WORKLOADS)
    def test_parallel_matches_serial_exhaustive(self, model_spec, nodes,
                                                gpus, batch, seq_len):
        tuner = _make_tuner(model_spec, nodes, gpus, seq_len)
        serial = tuner.search(batch, parallelism=1, prune=False)
        parallel = tuner.search(batch, parallelism=4, prune=False)
        assert serial.found and parallel.found
        assert parallel.best_plan == serial.best_plan
        assert parallel.top_plans == serial.top_plans
        assert parallel.search_log == serial.search_log
        assert parallel.configurations_evaluated \
            == serial.configurations_evaluated

    @pytest.mark.parametrize(
        "model_spec,nodes,gpus,batch,seq_len", WORKLOADS)
    def test_parallel_matches_serial_pruned(self, model_spec, nodes, gpus,
                                            batch, seq_len):
        # under pruning, which cells get bound-skipped may vary with
        # worker timing — the returned plans never do
        tuner = _make_tuner(model_spec, nodes, gpus, seq_len)
        serial = tuner.search(batch, parallelism=1)
        parallel = tuner.search(batch, parallelism=4)
        assert serial.found and parallel.found
        assert parallel.best_plan == serial.best_plan
        assert parallel.top_plans == serial.top_plans
        assert parallel.predicted_iteration_time \
            == serial.predicted_iteration_time

    def test_parallelism_zero_means_all_cores(self):
        tuner = _make_tuner("gpt3-1.3b", 1, 2, 2048)
        result = tuner.search(16, parallelism=0)
        assert result.found

    def test_evaluation_count_returned_directly(self):
        # the count comes back with each (S, G) solution, not through
        # mutable tuner state
        tuner = _make_tuner("gpt3-1.3b", 1, 2, 2048)
        solution, evaluated = tuner._tune_pipeline(16, 1, 2, 1, [24])
        assert evaluated > 0
        assert not hasattr(tuner, "_last_intra")


class TestDeprecatedShim:
    def test_tune_still_works_with_warning(self):
        tuner = _make_tuner("gpt3-1.3b", 1, 2, 2048)
        with pytest.deprecated_call():
            old = tuner.tune(16)
        new = tuner.search(16)
        assert old.best_plan == new.best_plan


class TestMistSolver:
    @pytest.fixture(scope="class")
    def report(self):
        job = TuningJob(model="gpt3-1.3b", num_gpus=2, global_batch=16,
                        scale="smoke", parallelism=2)
        return solve(job, "mist")

    def test_plan_found_and_measured(self, report):
        assert report.found
        assert report.throughput > 0
        assert report.predicted["throughput"] > 0
        assert report.configurations_evaluated > 0
        assert report.result is not None  # live execution attached

    def test_search_log_carried_over(self, report):
        assert report.search_log
        assert all("num_stages" in entry for entry in report.search_log)

    def test_report_round_trips_byte_identical(self, report):
        text = report.to_json()
        again = SolveReport.from_json(text)
        assert again.to_json() == text
        assert again.plan == report.plan
        assert again.top_plans == report.top_plans

    def test_plan_valid_for_workload(self, report):
        spec = report.job.workload
        report.plan.validate(spec.model, spec.cluster)

    def test_infeasible_cells_stay_strict_json(self):
        # 6.7B on 2 L4s in the parallelism-only space: (S, G) cells are
        # infeasible, logged as None — the JSON must parse strictly
        import json
        job = TuningJob(model="gpt3-6.7b", num_gpus=2, global_batch=8,
                        scale="smoke", space="3d")
        report = solve(job, "mist")
        assert any(entry["objective"] is None
                   for entry in report.search_log)
        def _no_constants(_):
            raise AssertionError("non-standard JSON constant emitted")
        parsed = json.loads(report.to_json(), parse_constant=_no_constants)
        assert parsed["solver"] == "mist"


class TestBaselineSolvers:
    JOB = TuningJob(model="gpt3-1.3b", num_gpus=2, global_batch=16,
                    scale="smoke")

    @pytest.mark.parametrize("name", ["megatron", "uniform"])
    def test_solver_finds_plan(self, name):
        report = get_solver(name).solve(self.JOB)
        assert report.solver == name
        assert report.found
        assert report.throughput > 0
        assert SolveReport.from_json(report.to_json()).to_json() \
            == report.to_json()
