"""Tests for the baseline system reproductions."""

import pytest

from repro.baselines import (
    AcesoTuner,
    CAPABILITY_TABLE,
    DeepSpeedTuner,
    MegatronTuner,
    SerialInterferenceModel,
    UniformHeuristicTuner,
    pipeline_grids,
)
from repro.evaluation import calibrated_interference
from repro.hardware import make_cluster
from repro.models import get_model

MODEL = get_model("gpt3-1.3b")
CLUSTER = make_cluster("L4", 1, 2)
SEQ_LEN = 2048
BATCH = 16


class TestPipelineGrids:
    def test_yields_valid_tuples(self):
        for num_stages, dp, tp, gacc, b in pipeline_grids(MODEL, CLUSTER,
                                                          BATCH):
            assert num_stages * dp * tp == CLUSTER.total_gpus
            assert dp * b * gacc == BATCH
            assert MODEL.num_layers % num_stages == 0

    def test_covers_pure_dp_and_pure_pp(self):
        combos = {(s, dp, tp)
                  for s, dp, tp, _, _ in pipeline_grids(MODEL, CLUSTER,
                                                        BATCH)}
        assert (1, 2, 1) in combos  # pure DP
        assert (2, 1, 1) in combos  # pure PP


class TestMegatron:
    @pytest.fixture(scope="class")
    def result(self):
        return MegatronTuner(MODEL, CLUSTER, seq_len=SEQ_LEN).tune(BATCH)

    def test_finds_plan(self, result):
        assert result.found
        assert result.throughput > 0

    def test_space_restrictions(self):
        tuner = MegatronTuner(MODEL, CLUSTER, seq_len=SEQ_LEN)
        for plan in tuner.candidate_plans(BATCH):
            for stage in plan.stages:
                assert stage.zero in (0, 1)  # no ZeRO-2/3
                assert stage.ckpt in (0, stage.layers)  # full or none
                assert stage.oo == stage.ao == stage.go == stage.wo == 0.0

    def test_uniform_stages(self):
        tuner = MegatronTuner(MODEL, CLUSTER, seq_len=SEQ_LEN)
        for plan in tuner.candidate_plans(BATCH):
            assert len({s.layers for s in plan.stages}) == 1

    def test_oom_candidates_counted(self, result):
        assert result.candidates_tried > result.candidates_oom >= 0


class TestDeepSpeed:
    def test_includes_zero3_and_offload(self):
        tuner = DeepSpeedTuner(MODEL, CLUSTER, seq_len=SEQ_LEN)
        zeros = set()
        offloads = set()
        for plan in tuner.candidate_plans(BATCH):
            for stage in plan.stages:
                zeros.add(stage.zero)
                offloads.add((stage.oo, stage.go))
        assert 3 in zeros
        assert (1.0, 0.0) in offloads  # coarse optimizer offload
        assert (0.5, 0.0) not in offloads  # never fractional

    def test_finds_plan(self):
        result = DeepSpeedTuner(MODEL, CLUSTER, seq_len=SEQ_LEN).tune(BATCH)
        assert result.found


class TestAceso:
    def test_serial_interference_sums_channels(self):
        model = SerialInterferenceModel()
        assert model.predict_scalar(comp=1.0, g2g=2.0, c2g=0.5,
                                    g2c=0.5) == pytest.approx(4.0)

    def test_finds_plan_without_sharding_or_offload(self):
        result = AcesoTuner(MODEL, CLUSTER, seq_len=SEQ_LEN).tune(BATCH)
        assert result.found
        for stage in result.best_plan.stages:
            assert stage.zero == 0
            assert stage.oo == stage.ao == 0.0

    def test_per_stage_ckpt_can_differ(self):
        # the search space allows heterogeneous ckpt; just assert the
        # plan is structurally valid with per-stage values
        result = AcesoTuner(MODEL, CLUSTER, seq_len=SEQ_LEN).tune(BATCH)
        result.best_plan.validate(MODEL, CLUSTER)


class TestUniformHeuristic:
    def test_same_config_across_stages(self):
        tuner = UniformHeuristicTuner(
            MODEL, CLUSTER, seq_len=SEQ_LEN,
            interference=calibrated_interference(True),
        )
        result = tuner.tune(BATCH)
        assert result.found
        stages = result.best_plan.stages
        assert len({(s.ckpt, s.zero, s.oo, s.ao) for s in stages}) == 1


class TestCapabilityTable:
    def test_five_rows(self):
        assert len(CAPABILITY_TABLE) == 5

    def test_names_unique(self):
        names = [cap.name for cap in CAPABILITY_TABLE]
        assert len(names) == len(set(names))
