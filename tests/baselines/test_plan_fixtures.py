"""Golden plan-hash fixture: both engines reproduce the committed plans.

``PLANS_fig16.json`` pins, per incremental search space, the winning
plan's deterministic hash and predicted objective for the smoke-scale
Fig. 16 workload. Any drift — a cost-model edit, a changed tie-break, a
vectorization bug — fails here with a per-space diff naming exactly
which space moved and how, for *either* engine independently.

After an intentional change, regenerate with::

    PYTHONPATH=src python scripts/refresh_plan_fixtures.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.benchmarking import measure_fig16
from repro.evaluation.workloads import get_scale
from repro.symbolic import ENGINES

FIXTURE = Path(__file__).parent / "PLANS_fig16.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module", params=sorted(ENGINES))
def measured(request, golden) -> tuple[str, dict]:
    scale = get_scale(golden["scale"])
    return request.param, measure_fig16(scale, prune=True,
                                        engine=request.param)


def _diff(golden: dict, measured: dict, engine: str) -> list[str]:
    """Readable per-space drift report; empty when everything matches."""
    lines = []
    for name, want in sorted(golden["spaces"].items()):
        entry = measured["per_space"].get(name)
        got_hash = measured["plan_hashes"].get(name)
        if entry is None:
            lines.append(f"  {name}: space missing from measurement")
            continue
        if got_hash != want["plan_hash"]:
            lines.append(
                f"  {name}: plan_hash {want['plan_hash']} -> {got_hash}")
        if entry["objective"] != want["objective"]:
            lines.append(
                f"  {name}: objective {want['objective']!r} "
                f"-> {entry['objective']!r}")
    for name in measured["plan_hashes"]:
        if name not in golden["spaces"]:
            lines.append(f"  {name}: new space absent from fixture")
    if lines:
        lines.insert(0, f"engine={engine!r} drifted from PLANS_fig16.json "
                        "(regenerate via scripts/refresh_plan_fixtures.py "
                        "if intentional):")
    return lines


def test_fixture_schema(golden):
    assert golden["schema"] == "repro-plan-fixture/1"
    assert golden["spaces"], "fixture must pin at least one space"
    for name, entry in golden["spaces"].items():
        assert set(entry) == {"plan_hash", "objective"}, name


def test_engine_reproduces_golden_plans(golden, measured):
    engine, result = measured
    drift = _diff(golden, result, engine)
    assert not drift, "\n".join(drift)


def test_fixture_is_normalized(golden):
    # the regen script writes sorted, indented JSON — a hand edit that
    # breaks this also breaks reviewable diffs on the next regen
    canonical = json.dumps(golden, indent=2, sort_keys=True) + "\n"
    assert FIXTURE.read_text() == canonical
