"""Shared fixtures for the campaign tests.

Most tests drive the campaign machinery through *stub solvers* (solves
take microseconds; invocation counters prove when a search actually
ran). The resume/bit-identity tests that must cross a process boundary
use the real registry solvers at smoke scale instead — stub
registrations don't exist inside pool worker processes.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import SolveReport, register_solver
from repro.campaigns import CampaignSpec


class StubSolverState:
    """Counters for one registered stub solver."""

    def __init__(self, name: str, factor: float):
        self.name = name
        self.factor = factor
        self.lock = threading.Lock()
        self.invocations = 0
        self.fail_on: set[str] = set()

    def reset(self):
        with self.lock:
            self.invocations = 0
            self.fail_on = set()


def _make_stub(name: str, factor: float) -> StubSolverState:
    state = StubSolverState(name, factor)

    @register_solver(name, overwrite=True)
    class _Stub:  # noqa: F841 — registered for its side effect
        def solve(self, job):
            with state.lock:
                state.invocations += 1
                if job.fingerprint() in state.fail_on:
                    raise RuntimeError("stub ordered to fail")
            return SolveReport(
                solver=name, job=job,
                measured={"throughput": float(job.global_batch)
                          * state.factor,
                          "iteration_time": 0.1},
                tuning_time_seconds=0.01,
                configurations_evaluated=3,
            )

    return state


_CAMP_A = _make_stub("camp-a", 1.0)
_CAMP_B = _make_stub("camp-b", 1.5)


@pytest.fixture()
def stub_a() -> StubSolverState:
    _CAMP_A.reset()
    return _CAMP_A


@pytest.fixture()
def stub_b() -> StubSolverState:
    _CAMP_B.reset()
    return _CAMP_B


@pytest.fixture()
def stub_spec(stub_a, stub_b) -> CampaignSpec:
    """2 solvers x 2 batches on a tiny implied cluster = 4 cells."""
    return CampaignSpec(
        name="stub-grid",
        solvers=("camp-a", "camp-b"),
        models=("gpt3-1.3b",),
        clusters=({"gpu": "L4", "num_gpus": 2},),
        scales=("smoke",),
        global_batches=(8, 16),
        interference="none",
    )
