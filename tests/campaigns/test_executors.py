"""Tests for the executor registry and the inline/service backends.

(The process-pool backend crosses a real process boundary and is
covered with real solvers in ``test_resume.py``.)
"""

import pytest

from repro.api import PlanCache
from repro.campaigns import (
    ExecutorNotFoundError,
    executor_names,
    executor_registry,
    get_executor,
    register_executor,
    run_campaign,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"inline", "process-pool", "service"} <= set(executor_names())

    def test_unknown_executor(self):
        with pytest.raises(ExecutorNotFoundError):
            get_executor("quantum")

    def test_duplicate_registration_rejected(self):
        @register_executor("exec-dup-test", overwrite=True)
        class One:
            def run(self, cells, **kwargs):
                pass

        with pytest.raises(ValueError, match="already registered"):
            @register_executor("exec-dup-test")
            class Two:
                def run(self, cells, **kwargs):
                    pass

    def test_options_forwarded_and_validated(self):
        pool = get_executor("process-pool", workers=4)
        assert pool.workers == 4
        with pytest.raises(ValueError, match="invalid options"):
            get_executor("inline", bogus=True)
        with pytest.raises(ValueError, match="workers"):
            get_executor("process-pool", workers=0)
        with pytest.raises(ValueError, match="url"):
            get_executor("service")

    def test_registry_snapshot(self):
        snap = executor_registry()
        assert snap["inline"].executor_name == "inline"


class TestInlineExecutor:
    def test_runs_all_cells(self, stub_spec, stub_a, stub_b, tmp_path):
        report = run_campaign(stub_spec, cache=PlanCache(tmp_path))
        assert report.counters == {
            "cells": 4, "done": 4, "failed": 0, "pending": 0,
            "solved": 4, "cache_hits": 0, "manifest_hits": 0,
        }
        assert stub_a.invocations == 2 and stub_b.invocations == 2

    def test_cache_short_circuits_second_run(self, stub_spec, stub_a,
                                             stub_b, tmp_path):
        cache = PlanCache(tmp_path)
        run_campaign(stub_spec, cache=cache)
        before = (stub_a.invocations, stub_b.invocations)
        report = run_campaign(stub_spec, cache=cache)
        assert report.counters["cache_hits"] == 4
        assert report.counters["solved"] == 0
        assert (stub_a.invocations, stub_b.invocations) == before

    def test_cell_failure_isolated(self, stub_spec, stub_a, stub_b):
        bad = stub_spec.expand()[0]
        stub_a.fail_on.add(bad.job.fingerprint())
        report = run_campaign(stub_spec)
        assert report.counters["failed"] == 1
        assert report.counters["done"] == 3
        failed = [rec for rec in report.cells
                  if rec["status"] == "failed"]
        assert "RuntimeError" in failed[0]["error"]
        assert not report.complete

    def test_should_stop_aborts_remainder(self, stub_spec, stub_a, stub_b):
        seen = []

        def stop() -> bool:
            return len(seen) >= 2

        report = run_campaign(stub_spec,
                              on_event=lambda rec, _r: seen.append(rec),
                              should_stop=stop)
        assert report.counters["done"] == 2
        assert report.counters["pending"] == 2

    def test_events_stream_per_cell(self, stub_spec, stub_a, stub_b,
                                    tmp_path):
        run_campaign(stub_spec, directory=tmp_path / "run")
        from repro.campaigns import CampaignManifest

        manifest = CampaignManifest(tmp_path / "run")
        events = manifest.events()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign-started"
        assert kinds.count("cell") == 4
        assert kinds[-1] == "campaign-finished"
        cell_events = [e for e in events if e["event"] == "cell"]
        assert all(e["source"] == "solved" for e in cell_events)


class TestServiceExecutor:
    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.service import TuningService

        service = TuningService(workers=2,
                                cache=PlanCache(tmp_path / "daemon-plans"))
        handle = service.run_in_thread()
        yield handle
        handle.stop()

    def test_cells_ride_the_daemon(self, daemon, stub_spec, stub_a, stub_b,
                                   tmp_path):
        report = run_campaign(
            stub_spec, executor="service",
            executor_options={"url": daemon.url},
            directory=tmp_path / "run",
        )
        assert report.counters["done"] == 4
        assert report.counters["solved"] == 4
        # the daemon tracked the batch as one campaign
        from repro.service import Client

        [campaign] = Client(daemon.url).campaigns()
        assert campaign["name"] == "stub-grid"
        assert campaign["counters"]["cells"] == 4

    def test_resume_needs_no_daemon_roundtrip(self, daemon, stub_spec,
                                              stub_a, stub_b, tmp_path):
        run_campaign(stub_spec, executor="service",
                     executor_options={"url": daemon.url},
                     directory=tmp_path / "run")
        invocations = (stub_a.invocations, stub_b.invocations)
        daemon.stop()       # resume must not need the daemon at all
        report = run_campaign(stub_spec, executor="service",
                              executor_options={"url": daemon.url},
                              directory=tmp_path / "run", resume=True)
        assert report.counters["manifest_hits"] == 4
        assert report.counters["solved"] == 0
        assert (stub_a.invocations, stub_b.invocations) == invocations

    def test_daemon_side_cache_hits_reported(self, daemon, stub_spec,
                                             stub_a, stub_b, tmp_path):
        run_campaign(stub_spec, executor="service",
                     executor_options={"url": daemon.url})
        report = run_campaign(stub_spec, executor="service",
                              executor_options={"url": daemon.url})
        assert report.counters["cache_hits"] == 4
        assert stub_a.invocations == 2 and stub_b.invocations == 2

    def test_unreachable_daemon_fails_cells_cleanly(self, stub_spec,
                                                    stub_a, stub_b):
        report = run_campaign(
            stub_spec, executor="service",
            executor_options={"url": "http://127.0.0.1:9",
                              "timeout": 5.0})
        assert report.counters["failed"] == 4
        assert all("service" in rec["error"] for rec in report.cells)
