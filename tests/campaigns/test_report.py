"""Tests for campaign aggregation: counters, speedups, round-trips."""

import pytest

from repro.campaigns import CampaignReport, aggregate, run_campaign


class TestAggregation:
    def test_counters_and_table(self, stub_spec, stub_a, stub_b):
        report = run_campaign(stub_spec)
        assert report.complete
        assert report.counters["solved"] == 4
        # camp-b returns 1.5x camp-a's throughput on every cell
        speedups = report.speedups(reference="camp-a")
        for row in speedups.values():
            assert row["camp-b"] == pytest.approx(1.5)
            assert row["camp-a"] == pytest.approx(1.0)
        table = report.table()
        assert "camp-a (samp/s | x)" in table
        assert "1.50x" in table

    def test_default_reference_is_first_solver(self, stub_spec, stub_a,
                                               stub_b):
        report = run_campaign(stub_spec)
        assert report.reference() == "camp-a"
        assert run_campaign(
            stub_spec.with_(reference="camp-b")).reference() == "camp-b"

    def test_missing_reference_raises_clear_error(self, stub_spec, stub_a,
                                                  stub_b):
        report = run_campaign(stub_spec)
        with pytest.raises(ValueError, match="available"):
            report.speedups(reference="megatron")

    def test_json_round_trip(self, stub_spec, stub_a, stub_b):
        report = run_campaign(stub_spec)
        loaded = CampaignReport.from_json(report.to_json())
        assert loaded.to_json() == report.to_json()
        assert loaded.counters == report.counters
        assert loaded.spec == stub_spec

    def test_comparisons_round_trip_to_runner_shapes(self, stub_spec,
                                                     stub_a, stub_b):
        report = run_campaign(stub_spec)
        comparisons = report.comparisons()
        assert len(comparisons) == 2      # one per workload
        for name, comparison in comparisons.items():
            assert comparison.workload.name == name
            assert comparison.speedup("camp-b", reference="camp-a") \
                == pytest.approx(1.5)

    def test_failures_render_as_zero(self, stub_spec, stub_a, stub_b):
        bad = stub_spec.expand()[0]
        stub_a.fail_on.add(bad.job.fingerprint())
        report = run_campaign(stub_spec)
        assert report.results()[bad.workload]["camp-a"] == 0.0
        assert "OOM/none" in report.table()

    def test_aggregate_of_empty_records(self):
        report = aggregate(None, [])
        assert report.counters["cells"] == 0
        assert report.reference() == ""
        assert "0/0" in report.describe()
