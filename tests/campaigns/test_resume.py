"""Campaign resume semantics with real solvers across process boundaries.

The satellite scenario: a process-pool campaign is killed mid-grid
(``should_stop`` fires after two cells — equivalent to a kill, since
the manifest is rewritten atomically per cell), then re-run with
resume. Solved cells must be served from the manifest + PlanCache with
no re-search; only missing cells may execute, and the counters prove
which path each cell took. Plans must stay bit-identical to individual
``repro.api.solve()`` calls.
"""

import pytest

from repro.api import PlanCache, solve
from repro.campaigns import CampaignManifest, CampaignSpec, run_campaign

#: 2 solvers x 2 batches on the tiniest workload = 4 real cells
SPEC = CampaignSpec(
    name="resume-grid",
    solvers=("mist", "uniform"),
    models=("gpt3-1.3b",),
    clusters=({"gpu": "L4", "num_gpus": 2},),
    scales=("smoke",),
    global_batches=(8, 16),
    interference="none",
)


@pytest.fixture(scope="module")
def killed_run(tmp_path_factory):
    """One process-pool campaign aborted after two recorded cells."""
    directory = tmp_path_factory.mktemp("campaign")
    recorded = []

    def should_stop() -> bool:
        return len(recorded) >= 2

    report = run_campaign(
        SPEC, executor="process-pool", executor_options={"workers": 2},
        directory=directory,
        on_event=lambda rec, _r: recorded.append(rec),
        should_stop=should_stop,
    )
    return directory, report


class TestKilledMidGrid:
    def test_partial_manifest_survives(self, killed_run):
        directory, report = killed_run
        assert report.counters["done"] == 2
        assert report.counters["pending"] == 2
        manifest = CampaignManifest(directory)
        assert manifest.load()
        assert len(manifest.cells()) == 2
        assert all(rec["status"] == "done" for rec in manifest.cells())

    def test_resume_serves_done_cells_without_research(self, killed_run):
        directory, _ = killed_run
        manifest = CampaignManifest(directory)
        assert manifest.load()
        done_before = {rec["cell_id"] for rec in manifest.cells()}

        report = run_campaign(SPEC, executor="process-pool",
                              executor_options={"workers": 2},
                              directory=directory, resume=True)
        # the two recorded cells came straight from the manifest; the
        # two the kill dropped were finished by in-flight workers and
        # landed in the plan cache, so *zero* new searches ran — the
        # memo/cache counters prove it
        assert report.counters["done"] == 4
        assert report.counters["manifest_hits"] == 2
        assert report.counters["solved"] == 0
        assert (report.counters["cache_hits"]
                + report.counters["manifest_hits"]) == 4
        by_id = {rec["cell_id"]: rec for rec in report.cells}
        for cell_id in done_before:
            assert by_id[cell_id]["source"] == "manifest"

        # an immediate second resume is pure manifest
        report2 = run_campaign(SPEC, executor="process-pool",
                               executor_options={"workers": 2},
                               directory=directory, resume=True)
        assert report2.counters["manifest_hits"] == 4
        assert report2.counters["solved"] == 0

    def test_evicted_cache_entry_forces_real_resolve(self, killed_run):
        directory, _ = killed_run
        manifest = CampaignManifest(directory)
        assert manifest.load()
        victim = manifest.cells()[0]
        cache = PlanCache(directory / "plans")
        path = cache.path_for_fingerprint(victim["fingerprint"],
                                          victim["solver"])
        assert path.exists()
        path.unlink()
        # manifest says done, but the backing plan is gone -> the cell
        # must actually re-execute (a real search, not a silent reuse)
        report = run_campaign(SPEC, executor="process-pool",
                              executor_options={"workers": 2},
                              directory=directory, resume=True)
        assert report.counters["solved"] == 1
        assert report.counters["manifest_hits"] == 3

    def test_plans_bit_identical_to_individual_solves(self, killed_run):
        directory, _ = killed_run
        report = run_campaign(SPEC, executor="process-pool",
                              executor_options={"workers": 2},
                              directory=directory, resume=True)
        for rec in report.cells:
            from repro.api import TuningJob

            job = TuningJob.from_dict(rec["job"])
            direct = solve(job, rec["solver"])
            assert rec["plan"] == direct.plan.to_dict(), (
                f"{rec['solver']} plan drifted from repro.api.solve()")
            assert rec["throughput"] == pytest.approx(direct.throughput)


class TestResumeGuards:
    def test_resume_without_directory_rejected(self):
        from repro.campaigns import CampaignError

        with pytest.raises(CampaignError, match="directory"):
            run_campaign(SPEC, resume=True)

    def test_resume_without_manifest_rejected(self, tmp_path):
        from repro.campaigns import CampaignError

        with pytest.raises(CampaignError, match="nothing to resume"):
            run_campaign(SPEC, directory=tmp_path / "empty", resume=True)

    def test_resume_spec_mismatch_rejected(self, stub_spec, stub_a,
                                           stub_b, tmp_path):
        from repro.campaigns import CampaignError

        run_campaign(stub_spec, directory=tmp_path / "run")
        changed = stub_spec.with_(global_batches=(8,))
        with pytest.raises(CampaignError, match="spec changed"):
            run_campaign(changed, directory=tmp_path / "run", resume=True)
