"""Tests for CampaignSpec: matrix expansion, excludes, serialization."""

import json

import pytest

from repro.api import TuningJob
from repro.campaigns import CampaignCell, CampaignSpec, CampaignValidationError
from repro.evaluation.workloads import paper_workloads


class TestValidation:
    def test_needs_solvers_and_models(self):
        with pytest.raises(CampaignValidationError):
            CampaignSpec(name="x", solvers=(), models=("gpt3-1.3b",))
        with pytest.raises(CampaignValidationError):
            CampaignSpec(name="x", solvers=("mist",))

    def test_sizes_require_family(self):
        with pytest.raises(CampaignValidationError):
            CampaignSpec(name="x", solvers=("mist",), sizes=("1.3b",))

    def test_reference_must_be_a_solver(self):
        with pytest.raises(CampaignValidationError):
            CampaignSpec(name="x", solvers=("mist",),
                         models=("gpt3-1.3b",), global_batches=(8,),
                         reference="megatron")

    def test_exclude_rules_validated(self):
        with pytest.raises(CampaignValidationError):
            CampaignSpec(name="x", solvers=("mist",), models=("gpt3-1.3b",),
                         global_batches=(8,), exclude=({"planet": "mars"},))

    def test_unknown_solver_rejected_at_expansion(self):
        spec = CampaignSpec(name="x", solvers=("no-such-solver",),
                            models=("gpt3-1.3b",),
                            clusters=({"gpu": "L4", "num_gpus": 2},),
                            global_batches=(8,))
        with pytest.raises(CampaignValidationError, match="unknown solver"):
            spec.expand()
        # ...but can be skipped for manifest inspection
        assert len(spec.expand(check_solvers=False)) == 1

    def test_unknown_size_rejected(self):
        spec = CampaignSpec(name="x", solvers=("mist",), family="gpt3",
                            sizes=("9000b",))
        with pytest.raises(CampaignValidationError, match="unknown size"):
            spec.expand()

    def test_explicit_model_needs_batches(self):
        spec = CampaignSpec(name="x", solvers=("mist",),
                            models=("gpt3-1.3b",),
                            clusters=({"gpu": "L4", "num_gpus": 2},))
        with pytest.raises(CampaignValidationError, match="global_batches"):
            spec.expand()

    def test_shorthand_cluster_without_count_needs_family(self):
        spec = CampaignSpec(name="x", solvers=("mist",),
                            models=("gpt3-1.3b",),
                            clusters=({"gpu": "L4"},), global_batches=(8,))
        with pytest.raises(CampaignValidationError, match="num_gpus"):
            spec.expand()


class TestExpansion:
    def test_family_grid_follows_table4_rule(self):
        spec = CampaignSpec(name="grid", solvers=("megatron", "mist"),
                            family="gpt3", sizes=("1.3b", "2.7b"),
                            clusters=({"gpu": "L4"},), scales=("smoke",))
        cells = spec.expand()
        assert len(cells) == 4
        by_model = {(c.solver, c.model): c for c in cells}
        cell = by_model[("mist", "gpt3-2.7b")]
        assert cell.job.num_gpus == 4
        assert cell.job.global_batch == 64
        assert cell.job.seq_len == 2048       # L4 default

    def test_cells_match_single_job_path(self):
        # the acceptance-critical identity: campaign cells must carry
        # the exact jobs (and so fingerprints) the sweep/runner builds
        spec = CampaignSpec(name="grid", solvers=("mist",), family="gpt3",
                            sizes=("1.3b",), clusters=({"gpu": "L4"},),
                            scales=("smoke",), global_batches=(8,))
        [cell] = spec.expand()
        workload = paper_workloads("L4", sizes=("1.3b",))[0]
        import dataclasses
        workload = dataclasses.replace(workload, global_batch=8)
        direct = TuningJob.from_workload(workload, space="mist",
                                         scale="smoke")
        assert cell.job.fingerprint() == direct.fingerprint()

    def test_exclude_rules_drop_cells(self):
        spec = CampaignSpec(
            name="grid", solvers=("megatron", "mist"), family="gpt3",
            sizes=("1.3b", "2.7b"), clusters=({"gpu": "L4"},),
            scales=("smoke",),
            exclude=({"solver": "megatron", "model": "gpt3-2.7b"},),
        )
        cells = spec.expand()
        assert len(cells) == 3
        assert ("megatron", "gpt3-2.7b") not in {
            (c.solver, c.model) for c in cells}

    def test_exclude_list_values(self):
        spec = CampaignSpec(
            name="grid", solvers=("megatron", "mist"), family="gpt3",
            sizes=("1.3b", "2.7b"), clusters=({"gpu": "L4"},),
            exclude=({"model": ["gpt3-1.3b", "gpt3-2.7b"]},),
        )
        assert spec.expand() == []

    def test_duplicate_cells_merged(self):
        spec = CampaignSpec(name="grid", solvers=("mist",),
                            models=("gpt3-1.3b", "gpt3-1.3b"),
                            clusters=({"gpu": "L4", "num_gpus": 2},),
                            global_batches=(8,))
        assert len(spec.expand()) == 1

    def test_explicit_cluster_dict_kept_raw_on_job(self):
        cluster = {"gpu": "L4", "num_nodes": 1, "gpus_per_node": 2}
        spec = CampaignSpec(name="grid", solvers=("mist",),
                            models=("gpt3-1.3b",), clusters=(cluster,),
                            global_batches=(8,))
        [cell] = spec.expand()
        assert cell.job.cluster == cluster
        assert cell.job.num_gpus == 2

    def test_heterogeneous_cluster_axis(self):
        mixed = {"groups": [
            {"name": "a100", "gpu": "A100-40GB", "num_nodes": 1,
             "gpus_per_node": 2},
            {"name": "l4", "gpu": "L4", "num_nodes": 1,
             "gpus_per_node": 2},
        ]}
        spec = CampaignSpec(name="grid", solvers=("mist",),
                            models=("gpt3-1.3b",), clusters=(mixed,),
                            global_batches=(16,))
        [cell] = spec.expand()
        assert cell.job.num_gpus == 4
        assert cell.cluster == "2xA100-40GB+2xL4"
        assert cell.job.seq_len == 4096      # first group is A100

    def test_cluster_file_path_entry(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(
            {"gpu": "L4", "num_nodes": 1, "gpus_per_node": 2}))
        spec = CampaignSpec(name="grid", solvers=("mist",),
                            models=("gpt3-1.3b",), clusters=(str(path),),
                            global_batches=(8,))
        [cell] = spec.expand()
        assert cell.job.num_gpus == 2

    def test_missing_cluster_file_clean_error(self):
        spec = CampaignSpec(name="grid", solvers=("mist",),
                            models=("gpt3-1.3b",),
                            clusters=("/no/such/file.json",),
                            global_batches=(8,))
        with pytest.raises(CampaignValidationError, match="cannot read"):
            spec.expand()

    def test_paper_grid_convenience(self):
        spec = CampaignSpec.paper_grid(gpu="L4", sizes=("1.3b",),
                                       solvers=("megatron", "mist"),
                                       scale="smoke")
        assert spec.name == "gpt3-l4-smoke"
        assert len(spec.expand()) == 2


class TestSerialization:
    SPEC = CampaignSpec(
        name="grid", solvers=("megatron", "mist"), family="gpt3",
        sizes=("1.3b",), clusters=({"gpu": "L4"}, {"gpu": "A100-40GB"}),
        scales=("smoke", "quick"), exclude=({"solver": "megatron"},),
        reference="mist",
    )

    def test_json_round_trip(self):
        assert CampaignSpec.from_json(self.SPEC.to_json()) == self.SPEC

    def test_fingerprint_stable_and_parallelism_free(self):
        assert self.SPEC.fingerprint() == self.SPEC.fingerprint()
        assert (self.SPEC.with_(parallelism=8).fingerprint()
                == self.SPEC.fingerprint())
        assert (self.SPEC.with_(scales=("smoke",)).fingerprint()
                != self.SPEC.fingerprint())

    def test_from_json_rejects_non_object(self):
        with pytest.raises(CampaignValidationError):
            CampaignSpec.from_json("[1, 2]")

    def test_from_dict_rejects_typoed_axis(self):
        # "seq_len" (singular) must not silently vanish into defaults
        data = self.SPEC.to_dict()
        data["seq_len"] = [4096]
        with pytest.raises(CampaignValidationError, match="seq_len"):
            CampaignSpec.from_dict(data)

    def test_cell_ids_are_solver_fingerprint(self):
        spec = CampaignSpec(name="grid", solvers=("mist",),
                            models=("gpt3-1.3b",),
                            clusters=({"gpu": "L4", "num_gpus": 2},),
                            global_batches=(8,))
        [cell] = spec.expand()
        assert isinstance(cell, CampaignCell)
        assert cell.cell_id == f"mist-{cell.job.fingerprint()}"
