"""Storm scenario: a device group dies mid-campaign.

The elastic re-tuning satellite, end to end on real solvers: a
process-pool campaign over a heterogeneous fleet is killed mid-grid
(the storm takes the ``a100`` group with it), the manifest resume
finishes the surviving grid without re-searching anything already
solved, and the operator then extends the grid with the post-storm
cluster — sharing one plan cache, so only the invalidated (delta'd)
cells execute. Finally a warm :func:`repro.api.replan` of an affected
cell must reproduce the campaign's cold solve bit-for-bit and land on
the same cache key.
"""

import pytest

from repro.api import PlanCache, TuningJob, delta_job, replan
from repro.campaigns import CampaignManifest, CampaignSpec, run_campaign
from repro.hardware import (
    ClusterDelta,
    DeviceGroup,
    HeterogeneousCluster,
    cluster_to_dict,
    make_cluster,
)

#: the pre-storm fleet: one a100 node + one l4 node
C0 = cluster_to_dict(HeterogeneousCluster(groups=(
    DeviceGroup("a100", make_cluster("A100-40GB", 1, 2)),
    DeviceGroup("l4", make_cluster("L4", 1, 2)),
)))
#: the storm: the a100 group is gone (collapses to a plain L4 cluster)
STORM = ClusterDelta.remove_group("a100")
C1 = STORM.apply(C0)

SPEC = CampaignSpec(
    name="storm-grid",
    solvers=("mist", "uniform"),
    models=("gpt3-1.3b",),
    clusters=(C0,),
    scales=("smoke",),
    # pinned: the per-GPU default would differ between the mixed fleet
    # and the post-storm L4 cluster, and a replan preserves workload
    seq_lens=(2048,),
    global_batches=(8, 16),
    interference="none",
)


def _cells(report, cluster):
    return [rec for rec in report.cells
            if rec["job"].get("cluster") == cluster]


@pytest.fixture(scope="module")
def storm(tmp_path_factory):
    """Kill mid-grid, resume, then re-plan the grid on the storm fleet."""
    directory = tmp_path_factory.mktemp("storm")
    recorded = []

    def should_stop() -> bool:
        return len(recorded) >= 2

    run_campaign(SPEC, executor="process-pool",
                 executor_options={"workers": 2}, directory=directory,
                 on_event=lambda rec, _r: recorded.append(rec),
                 should_stop=should_stop)
    resumed = run_campaign(SPEC, executor="process-pool",
                           executor_options={"workers": 2},
                           directory=directory, resume=True)
    after_dir = tmp_path_factory.mktemp("storm-after")
    after = run_campaign(
        SPEC.with_(name="storm-after", clusters=(C0, C1)),
        executor="process-pool", executor_options={"workers": 2},
        directory=after_dir, cache=PlanCache(directory / "plans"))
    return directory, after_dir, resumed, after


class TestStormResume:
    def test_resume_solves_nothing_already_done(self, storm):
        _, _, resumed, _ = storm
        assert resumed.counters["done"] == 4
        assert resumed.counters["solved"] == 0
        assert resumed.counters["manifest_hits"] >= 2
        assert (resumed.counters["manifest_hits"]
                + resumed.counters["cache_hits"]) == 4

    def test_post_storm_grid_solves_only_invalidated_cells(self, storm):
        _, after_dir, _, after = storm
        assert after.counters["done"] == 8
        # the four pre-storm cells ride the shared plan cache; only the
        # four cells on the post-storm cluster actually execute
        assert after.counters["cache_hits"] == 4
        assert after.counters["solved"] == 4
        assert all(rec["source"] == "cache" for rec in _cells(after, C0))
        assert all(rec["source"] == "solved" for rec in _cells(after, C1))
        manifest = CampaignManifest(after_dir)
        assert manifest.load()
        assert len(manifest.cells()) == 8


class TestWarmEqualsCampaignCold:
    def test_warm_replan_matches_campaign_cold_solve(self, storm):
        directory, _, resumed, after = storm
        cache = PlanCache(directory / "plans")
        base = next(rec for rec in _cells(resumed, C0)
                    if rec["solver"] == "mist"
                    and rec["job"]["global_batch"] == 16)
        cold = next(rec for rec in _cells(after, C1)
                    if rec["solver"] == "mist"
                    and rec["job"]["global_batch"] == 16)
        base_job = TuningJob.from_dict(base["job"])
        incumbent = cache.load(base_job, "mist")
        assert incumbent is not None and incumbent.plan is not None
        warm = replan(base_job, STORM, incumbent=incumbent)
        assert warm.extra["replan"]["warm"] is True
        assert warm.plan.to_dict() == cold["plan"]

    def test_replan_shares_cache_key_with_campaign(self, storm):
        directory, _, resumed, after = storm
        base = next(rec for rec in _cells(resumed, C0)
                    if rec["solver"] == "mist"
                    and rec["job"]["global_batch"] == 8)
        cold = next(rec for rec in _cells(after, C1)
                    if rec["solver"] == "mist"
                    and rec["job"]["global_batch"] == 8)
        base_job = TuningJob.from_dict(base["job"])
        assert delta_job(base_job, STORM).fingerprint() \
            == cold["fingerprint"]
        # ...so a replan against the shared cache finds the campaign's
        # cold solve already there and never searches
        report = replan(base_job, STORM,
                        cache=PlanCache(directory / "plans"))
        assert report.extra["replan"]["incumbent"] == "cache-hit"
        assert report.plan.to_dict() == cold["plan"]
