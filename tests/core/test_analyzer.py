"""Tests for the symbolic performance analyzer."""

import numpy as np
import pytest

from repro.core import SymbolicPerformanceAnalyzer
from repro.core.plan import StageConfig, TrainingPlan, uniform_plan
from repro.hardware import make_cluster
from repro.models import get_model
from repro.tracing import trace


@pytest.fixture(scope="module")
def cluster():
    return make_cluster("L4", 1, 4)


@pytest.fixture(scope="module")
def analyzer(cluster):
    traced = trace(get_model("gpt3-1.3b"), cluster.gpu, flash=True)
    return SymbolicPerformanceAnalyzer(traced, cluster)


def base_env(analyzer, **overrides):
    values = dict(
        b=2, s=2048, tp=1, dp=2, l=12, ckpt=0, z1=0, z2=0, z3=0,
        wo=0.0, go=0.0, oo=0.0, ao=0.0, gacc=4, inflight=2,
        has_pre=1, has_post=0,
    )
    values.update(overrides)
    return analyzer.build_env(**values)


class TestPrediction:
    def test_positive_outputs(self, analyzer):
        pred = analyzer.predict(base_env(analyzer))
        assert pred.t_stable > 0
        assert pred.delta >= 0
        assert pred.peak_mem > 0

    def test_more_layers_more_time_and_memory(self, analyzer):
        small = analyzer.predict(base_env(analyzer, l=6))
        large = analyzer.predict(base_env(analyzer, l=12))
        assert large.t_stable > small.t_stable
        assert large.peak_mem > small.peak_mem

    def test_ckpt_trades_time_for_memory(self, analyzer):
        free = analyzer.predict(base_env(analyzer))
        ckpt = analyzer.predict(base_env(analyzer, ckpt=12))
        assert ckpt.t_stable > free.t_stable
        assert ckpt.peak_mem < free.peak_mem

    def test_offload_trades_delta_for_memory(self, analyzer):
        base = analyzer.predict(base_env(analyzer))
        off = analyzer.predict(base_env(analyzer, oo=1.0, z1=1))
        assert off.peak_mem < base.peak_mem
        assert off.delta > base.delta

    def test_batched_prediction_shape(self, analyzer):
        ckpts = np.array([0, 4, 8, 12])
        pred = analyzer.predict(base_env(analyzer, ckpt=ckpts))
        assert pred.t_stable.shape == (4,)
        assert np.all(np.diff(pred.t_stable) > 0)
        assert np.all(np.diff(pred.peak_mem) < 0)

    def test_missing_symbol_rejected(self, analyzer):
        with pytest.raises(ValueError, match="missing"):
            analyzer.build_env(b=2, s=2048)

    def test_budget_below_device_memory(self, analyzer, cluster):
        assert analyzer.memory_budget < cluster.gpu.usable_memory_bytes

    def test_gpu_mismatch_rejected(self, cluster):
        traced = trace(get_model("gpt3-1.3b"),
                       make_cluster("A100-40GB", 1, 4).gpu, flash=True)
        with pytest.raises(ValueError, match="priced"):
            SymbolicPerformanceAnalyzer(traced, cluster)


class TestPlanPrediction:
    def test_predict_plan_bundles_stages(self, analyzer, cluster):
        model = get_model("gpt3-1.3b")
        plan = uniform_plan(model, cluster, global_batch=16, gacc=4,
                            num_stages=2, dp=2, tp=1, zero=1,
                            ckpt_all=True)
        pred = analyzer.predict_plan(plan, seq_len=2048)
        assert pred.iteration_time > 0
        assert pred.throughput == pytest.approx(
            16 / pred.iteration_time
        )
        assert pred.stage_t.shape == (2,)
        assert isinstance(pred.fits_memory, bool)

    def test_first_stage_usually_heavier(self, analyzer, cluster):
        model = get_model("gpt3-1.3b")
        plan = uniform_plan(model, cluster, global_batch=16, gacc=4,
                            num_stages=2, dp=2, tp=1, zero=1,
                            ckpt_all=True)
        pred = analyzer.predict_plan(plan, seq_len=2048)
        # embedding + deeper in-flight queue on stage 0
        assert pred.stage_peak_mem[0] > 0

    def test_infeasible_plan_flagged(self, analyzer, cluster):
        model = get_model("gpt3-1.3b")
        # b=8, no ckpt, no sharding on 24GB cards with seq 2048
        plan = TrainingPlan(
            global_batch=32, gacc=1,
            stages=(StageConfig(layers=24, microbatch=8, dp=4, tp=1),),
        )
        pred = analyzer.predict_plan(plan, seq_len=2048)
        assert pred.stage_peak_mem[0] > 0
