"""Heterogeneous tuning: group assignments, budgets, bit-for-bit parity."""

import pytest

from repro.core import MistTuner, SPACE_MIST
from repro.core.inter_stage import StageSlot, group_stage_assignments
from repro.evaluation.workloads import get_scale
from repro.execution import ExecutionEngine
from repro.hardware import DeviceGroup, HeterogeneousCluster, make_cluster
from repro.models import get_model

MODEL = get_model("gpt3-1.3b")
SEQ_LEN = 2048
BATCH = 16
SPACE = get_scale("smoke").apply(SPACE_MIST)


def mixed() -> HeterogeneousCluster:
    return HeterogeneousCluster(groups=(
        DeviceGroup("a100", make_cluster("A100-40GB", 1, 2)),
        DeviceGroup("l4", make_cluster("L4", 1, 2)),
    ))


def make_tuner(cluster):
    return MistTuner(MODEL, cluster, seq_len=SEQ_LEN, space=SPACE,
                     max_pareto_points=3, max_gacc_candidates=2)


class TestGroupStageAssignments:
    def test_every_group_hosts_at_least_one_stage(self):
        for assignment in group_stage_assignments(mixed(), MODEL.num_layers):
            groups = {slot.group for slot in assignment}
            assert groups == {"a100", "l4"}

    def test_stage_gpus_divide_group_gpus(self):
        h = mixed()
        for assignment in group_stage_assignments(h, MODEL.num_layers):
            for slot in assignment:
                group = h.group_named(slot.group)
                count = sum(1 for s in assignment if s.group == slot.group)
                assert slot.stage_gpus * count == group.total_gpus

    def test_groups_are_contiguous(self):
        for assignment in group_stage_assignments(mixed(), MODEL.num_layers):
            order = []
            for slot in assignment:
                if not order or order[-1] != slot.group:
                    order.append(slot.group)
            assert len(order) == len(set(order))

    def test_both_traversal_directions_enumerated(self):
        firsts = {a[0].group
                  for a in group_stage_assignments(mixed(), MODEL.num_layers)}
        assert firsts == {"a100", "l4"}

    def test_respects_layer_budget(self):
        assignments = group_stage_assignments(mixed(), 2)
        assert assignments  # 1 stage per group still fits
        assert all(len(a) <= 2 for a in assignments)

    def test_slots_are_named_tuples(self):
        slot = group_stage_assignments(mixed(), 4)[0][0]
        assert isinstance(slot, StageSlot)
        assert slot.stage_gpus >= 1


class TestHeterogeneousSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return make_tuner(mixed()).search(BATCH)

    def test_finds_feasible_plan(self, result):
        assert result.found
        assert result.best_plan.total_gpus == 4

    def test_plan_validates_against_cluster(self, result):
        result.best_plan.validate(MODEL, mixed())

    def test_stages_tagged_with_groups(self, result):
        tags = {s.device_group for s in result.best_plan.stages}
        assert tags == {"a100", "l4"}

    def test_per_stage_memory_fits_its_groups_budget(self, result):
        cluster = mixed()
        tuner = make_tuner(cluster)
        for stage in result.best_plan.stages:
            budget = tuner.analyzers[stage.device_group].memory_budget
            gpu = cluster.group_named(stage.device_group).gpu
            assert budget < gpu.usable_memory_bytes
        # executing checks the tracked peaks against each group's device
        out = ExecutionEngine(cluster, system="mist").run(
            result.best_plan, MODEL, seq_len=SEQ_LEN)
        for report in out.stage_memory:
            assert report.fits

    def test_search_log_records_group_assignments(self, result):
        assert result.search_log
        for entry in result.search_log:
            assert len(entry["groups"]) == entry["num_stages"]

    def test_parallel_search_identical(self, result):
        parallel = make_tuner(mixed()).search(BATCH, parallelism=4)
        assert parallel.best_plan == result.best_plan

    def test_slow_inter_group_link_priced_into_prediction(self, result):
        # choke the inter-group link: boundary stages' p2p is clamped
        # during tuning (not only at execution), so the predicted
        # objective must not improve
        choked = HeterogeneousCluster(
            groups=mixed().groups, inter_group_bandwidth=1e8,
            inter_group_latency=1e-3)
        slow = make_tuner(choked).search(BATCH)
        assert slow.found
        assert (slow.predicted_iteration_time
                >= result.predicted_iteration_time - 1e-12)

    def test_larger_gpu_gets_no_fewer_layers(self, result):
        by_group = {"a100": 0, "l4": 0}
        for stage in result.best_plan.stages:
            by_group[stage.device_group] += stage.layers
        assert by_group["a100"] >= by_group["l4"]


class TestHomogeneousParity:
    def test_single_group_cluster_reproduces_plain_plans(self):
        plain = make_cluster("L4", 1, 4)
        wrapped = HeterogeneousCluster(
            groups=(DeviceGroup("l4", plain),))
        base = make_tuner(plain).search(BATCH)
        hetero = make_tuner(wrapped).search(BATCH)
        assert base.found
        assert hetero.best_plan == base.best_plan
        assert hetero.top_plans == base.top_plans
        assert hetero.search_log == base.search_log

    def test_single_group_plans_carry_no_group_tag(self):
        wrapped = HeterogeneousCluster(
            groups=(DeviceGroup("l4", make_cluster("L4", 1, 2)),))
        result = make_tuner(wrapped).search(8)
        assert result.found
        assert all(s.device_group == "" for s in result.best_plan.stages)


class TestHeterogeneousExecution:
    def test_plan_with_unknown_group_rejected(self):
        from repro.core.plan import PlanValidationError, StageConfig, \
            TrainingPlan

        plan = TrainingPlan(global_batch=4, gacc=2, stages=(
            StageConfig(layers=12, microbatch=1, dp=2, tp=1,
                        device_group="a100"),
            StageConfig(layers=12, microbatch=1, dp=2, tp=1,
                        device_group="h100"),
        ))
        with pytest.raises(PlanValidationError, match="unknown device group"):
            plan.validate(MODEL, mixed())

    def test_group_gpu_overuse_rejected(self):
        from repro.core.plan import PlanValidationError, StageConfig, \
            TrainingPlan

        plan = TrainingPlan(global_batch=4, gacc=2, stages=(
            StageConfig(layers=12, microbatch=1, dp=2, tp=1,
                        device_group="a100"),
            StageConfig(layers=12, microbatch=1, dp=2, tp=1,
                        device_group="a100"),
        ))
        with pytest.raises(PlanValidationError, match="group 'a100'"):
            plan.validate(MODEL, mixed())

    def test_oversized_stage_ooms_on_small_group_but_fits_large(self):
        from repro.execution import OOMError
        from repro.core.plan import StageConfig, TrainingPlan

        # no checkpointing, no offload: an activation load a 24 GB L4
        # cannot hold but a 40 GB A100 can (identical work per stage)
        plan = TrainingPlan(global_batch=12, gacc=1, stages=(
            StageConfig(layers=12, microbatch=6, dp=2, tp=1,
                        device_group="a100"),
            StageConfig(layers=12, microbatch=6, dp=2, tp=1,
                        device_group="l4"),
        ))
        engine = ExecutionEngine(mixed(), system="mist")
        unchecked = engine.run(plan, MODEL, seq_len=SEQ_LEN,
                               check_memory=False)
        fits = {stage.device_group: rep.fits
                for stage, rep in zip(plan.stages, unchecked.stage_memory)}
        assert fits == {"a100": True, "l4": False}
        with pytest.raises(OOMError):
            engine.run(plan, MODEL, seq_len=SEQ_LEN)

    def test_engine_caches_traced_models_per_gpu(self):
        engine = ExecutionEngine(mixed(), system="mist")
        result = make_tuner(mixed()).search(BATCH)
        engine.run(result.best_plan, MODEL, seq_len=SEQ_LEN)
        gpus = {key[2] for key in engine._traced_cache}
        assert gpus == {"A100-40GB", "L4"}
