"""Tests for the inter-stage MILP against exact enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StageConfig
from repro.core.inter_stage import solve, solve_exact, solve_milp
from repro.core.intra_stage import ParetoPoint


def point(layers: int, t: float, d: float) -> ParetoPoint:
    return ParetoPoint(
        t=t, d=d, peak_mem=1.0,
        config=StageConfig(layers=layers, microbatch=1, dp=1, tp=1),
    )


def menus_from_table(table):
    """table[i][l] = [(t, d), ...] -> Menus structure."""
    menus = []
    for stage in table:
        menus.append({
            l: [point(l, t, d) for t, d in pts] for l, pts in stage.items()
        })
    return menus


class TestExactSolver:
    def test_single_stage(self):
        menus = menus_from_table([{4: [(1.0, 0.1)]}])
        sol = solve_exact(menus, 4, gacc=4)
        assert sol is not None
        assert sol.layer_counts == [4]
        # (G-1)*t + t + d = 4*1 + 0.1
        assert sol.objective == pytest.approx(4.1)

    def test_balances_layers(self):
        stage_menu = {l: [(0.5 * l, 0.0)] for l in (2, 3, 4)}
        menus = menus_from_table([stage_menu, stage_menu])
        sol = solve_exact(menus, 6, gacc=8)
        assert sorted(sol.layer_counts) == [3, 3]

    def test_infeasible_returns_none(self):
        menus = menus_from_table([{2: [(1.0, 0.0)]}, {2: [(1.0, 0.0)]}])
        assert solve_exact(menus, 10, gacc=2) is None

    def test_empty_menu_returns_none(self):
        menus = menus_from_table([{2: [(1.0, 0.0)]}, {}])
        assert solve_exact(menus, 4, gacc=2) is None

    def test_trades_t_against_d(self):
        """With many microbatches, pick low t; with one, pick low d."""
        menu = {4: [(1.0, 5.0), (1.3, 0.0)]}
        menus = menus_from_table([menu])
        many = solve_exact(menus, 4, gacc=64)
        assert many.choices[0].t == pytest.approx(1.0)
        few = solve_exact(menus_from_table([menu]), 4, gacc=1)
        assert few.choices[0].t == pytest.approx(1.3)


class TestMILPSolver:
    def test_matches_exact_on_small_instance(self):
        stage_menu = {
            l: [(0.4 * l, 0.2), (0.5 * l, 0.0)] for l in (2, 3, 4)
        }
        menus = menus_from_table([stage_menu, stage_menu])
        exact = solve_exact(menus, 6, gacc=4)
        milp = solve_milp(menus, 6, gacc=4)
        assert milp is not None
        assert milp.objective == pytest.approx(exact.objective, rel=1e-6)

    def test_respects_layer_budget(self):
        stage_menu = {l: [(1.0, 0.0)] for l in (1, 2, 3)}
        menus = menus_from_table([stage_menu] * 3)
        sol = solve_milp(menus, 7, gacc=2)
        assert sum(sol.layer_counts) == 7

    def test_imbalance_unaware_ignores_deltas(self):
        menu = {4: [(1.0, 9.0), (1.4, 0.0)]}
        menus = menus_from_table([menu])
        aware = solve_milp(menus, 4, gacc=2, imbalance_aware=True)
        unaware = solve_milp(menus, 4, gacc=2, imbalance_aware=False)
        assert aware.choices[0].t == pytest.approx(1.4)
        assert unaware.choices[0].t == pytest.approx(1.0)

    def test_infeasible_returns_none(self):
        menus = menus_from_table([{2: [(1.0, 0.0)]}])
        assert solve_milp(menus, 9, gacc=2) is None

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_stages=st.integers(min_value=1, max_value=3),
        gacc=st.integers(min_value=1, max_value=16),
    )
    def test_milp_equals_exact_property(self, seed, num_stages, gacc):
        """On random small instances the MILP is exactly optimal."""
        rng = np.random.default_rng(seed)
        layer_options = [2, 3, 4]
        table = []
        for _ in range(num_stages):
            stage = {}
            for l in layer_options:
                pts = [
                    (float(rng.uniform(0.1, 2.0) * l),
                     float(rng.uniform(0.0, 3.0)))
                    for _ in range(rng.integers(1, 3))
                ]
                stage[l] = pts
            table.append(stage)
        total = int(rng.integers(num_stages * 2, num_stages * 4 + 1))
        menus_a = menus_from_table(table)
        menus_b = menus_from_table(table)
        exact = solve_exact(menus_a, total, gacc)
        milp = solve_milp(menus_b, total, gacc)
        if exact is None:
            assert milp is None
        else:
            assert milp is not None
            assert milp.objective == pytest.approx(exact.objective, rel=1e-6)


class TestDispatch:
    def test_small_instances_use_exact(self):
        menus = menus_from_table([{2: [(1.0, 0.0)]}, {2: [(1.0, 0.0)]}])
        sol = solve(menus, 4, 2)
        assert sol is not None

    def test_large_instances_use_milp(self):
        stage_menu = {l: [(0.1 * l + 0.01 * k, 0.02 * k) for k in range(8)]
                      for l in range(2, 12)}
        menus = menus_from_table([stage_menu] * 4)
        sol = solve(menus, 24, 8)
        assert sol is not None
        assert sum(sol.layer_counts) == 24
