"""Tests for the intra-stage tuner and Pareto frontier extraction."""

import pytest

from repro.core import SPACE_3D, SPACE_MIST, SymbolicPerformanceAnalyzer
from repro.core.intra_stage import IntraStageTuner, StageShape
from repro.hardware import make_cluster
from repro.models import get_model
from repro.tracing import trace


@pytest.fixture(scope="module")
def analyzer():
    cluster = make_cluster("L4", 1, 4)
    traced = trace(get_model("gpt3-1.3b"), cluster.gpu, flash=True)
    return SymbolicPerformanceAnalyzer(traced, cluster)


def make_tuner(analyzer, space=SPACE_MIST, **kwargs):
    defaults = dict(global_batch=16, seq_len=2048, max_pareto_points=6)
    defaults.update(kwargs)
    return IntraStageTuner(analyzer, space, **defaults)


SHAPE = StageShape(stage_gpus=2, gacc=4, inflight=2, has_pre=True,
                   has_post=False)


class TestEnumeration:
    def test_returns_menu_per_layer_count(self, analyzer):
        tuner = make_tuner(analyzer)
        menus = tuner.tune(SHAPE, [10, 12, 14])
        assert set(menus) == {10, 12, 14}
        assert any(menus.values())

    def test_counts_evaluated_configs(self, analyzer):
        tuner = make_tuner(analyzer)
        tuner.tune(SHAPE, [12])
        assert tuner.evaluated > 100

    def test_bigger_space_evaluates_more(self, analyzer):
        small = make_tuner(analyzer, space=SPACE_3D)
        big = make_tuner(analyzer, space=SPACE_MIST)
        small.tune(SHAPE, [12])
        big.tune(SHAPE, [12])
        assert big.evaluated > small.evaluated

    def test_microbatch_follows_dp(self, analyzer):
        tuner = make_tuner(analyzer, global_batch=16)
        menus = tuner.tune(StageShape(stage_gpus=4, gacc=4, inflight=1,
                                      has_pre=True, has_post=True), [24])
        for point in menus[24]:
            cfg = point.config
            assert cfg.dp * cfg.microbatch * 4 == 16

    def test_infeasible_batch_yields_empty(self, analyzer):
        # global batch 3 cannot split over gacc=2
        tuner = make_tuner(analyzer, global_batch=3)
        menus = tuner.tune(StageShape(stage_gpus=2, gacc=2, inflight=1,
                                      has_pre=True, has_post=True), [24])
        assert menus[24] == []


class TestParetoFrontier:
    def test_frontier_is_nondominated(self, analyzer):
        tuner = make_tuner(analyzer)
        menus = tuner.tune(SHAPE, [12])
        points = menus[12]
        assert points
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                if i == j:
                    continue
                dominated = b.t <= a.t and b.d <= a.d and (
                    b.t < a.t or b.d < a.d
                )
                assert not dominated, (a, b)

    def test_frontier_sorted_by_t(self, analyzer):
        tuner = make_tuner(analyzer)
        points = tuner.tune(SHAPE, [12])[12]
        ts = [p.t for p in points]
        assert ts == sorted(ts)

    def test_frontier_capped(self, analyzer):
        tuner = make_tuner(analyzer, max_pareto_points=3)
        points = tuner.tune(SHAPE, [12])[12]
        assert len(points) <= 3

    def test_memory_respected(self, analyzer):
        tuner = make_tuner(analyzer)
        for points in tuner.tune(SHAPE, [10, 12]).values():
            for point in points:
                assert point.peak_mem <= analyzer.memory_budget

    def test_full_ckpt_policy_forces_recompute(self, analyzer):
        space = SPACE_3D.with_(name="full", ckpt_policy="full")
        tuner = make_tuner(analyzer, space=space)
        points = tuner.tune(SHAPE, [12])[12]
        assert points
        for point in points:
            assert point.config.ckpt == point.config.layers

    def test_auto_policy_is_full_or_none(self, analyzer):
        tuner = make_tuner(analyzer, space=SPACE_3D)
        points = tuner.tune(SHAPE, [12])[12]
        for point in points:
            assert point.config.ckpt in (0, point.config.layers)

    def test_objective_helper(self, analyzer):
        tuner = make_tuner(analyzer)
        points = tuner.tune(SHAPE, [12])[12]
        point = points[0]
        assert point.objective(alpha=1.0, gacc=4) == pytest.approx(
            4 * point.t
        )
        assert point.objective(alpha=0.0, gacc=4) == pytest.approx(point.d)
