"""Tests for plan dataclasses, validation, and objectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PlanValidationError,
    StageConfig,
    TrainingPlan,
    pipeline_iteration_time,
    pipeline_time_average,
    pipeline_time_uniform,
    throughput,
    uniform_plan,
    zero_flags,
)
from repro.hardware import make_cluster
from repro.models import get_model


class TestZeroFlags:
    def test_levels_cumulative(self):
        assert zero_flags(0) == (0, 0, 0)
        assert zero_flags(1) == (1, 0, 0)
        assert zero_flags(2) == (1, 1, 0)
        assert zero_flags(3) == (1, 1, 1)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            zero_flags(4)


class TestStageConfig:
    def test_valid(self):
        cfg = StageConfig(layers=8, microbatch=2, dp=2, tp=2, zero=2,
                          ckpt=4, oo=0.5)
        assert cfg.gpus == 4
        assert cfg.samples_per_microbatch == 4

    def test_ckpt_bounds(self):
        with pytest.raises(PlanValidationError):
            StageConfig(layers=4, microbatch=1, dp=1, tp=1, ckpt=5)

    def test_ratio_bounds(self):
        with pytest.raises(PlanValidationError):
            StageConfig(layers=4, microbatch=1, dp=1, tp=1, ao=1.5)

    def test_describe_mentions_offloads(self):
        cfg = StageConfig(layers=4, microbatch=1, dp=1, tp=1, ao=0.25)
        assert "AO=0.25" in cfg.describe()


class TestTrainingPlanValidation:
    @pytest.fixture
    def model(self):
        return get_model("gpt3-1.3b")  # 24 layers

    @pytest.fixture
    def cluster(self):
        return make_cluster("L4", 1, 4)

    def test_valid_plan(self, model, cluster):
        plan = uniform_plan(model, cluster, global_batch=8, gacc=2,
                            num_stages=2, dp=2, tp=1)
        plan.validate(model, cluster)
        assert plan.total_gpus == 4
        assert plan.total_layers == 24

    def test_layer_mismatch(self, model, cluster):
        plan = TrainingPlan(
            global_batch=8, gacc=2,
            stages=(StageConfig(layers=10, microbatch=2, dp=2, tp=1),
                    StageConfig(layers=10, microbatch=2, dp=2, tp=1)),
        )
        with pytest.raises(PlanValidationError, match="layers"):
            plan.validate(model, cluster)

    def test_gpu_mismatch(self, model, cluster):
        plan = TrainingPlan(
            global_batch=8, gacc=2,
            stages=(StageConfig(layers=24, microbatch=2, dp=2, tp=1),),
        )
        with pytest.raises(PlanValidationError, match="GPUs"):
            plan.validate(model, cluster)

    def test_wave_mismatch(self, model, cluster):
        plan = TrainingPlan(
            global_batch=8, gacc=2,
            stages=(StageConfig(layers=12, microbatch=1, dp=2, tp=1),
                    StageConfig(layers=12, microbatch=2, dp=2, tp=1)),
        )
        with pytest.raises(PlanValidationError, match="dp\\*b"):
            plan.validate(model, cluster)

    def test_tp_exceeding_node(self, model):
        tiny = make_cluster("L4", 2, 2)
        plan = TrainingPlan(
            global_batch=8, gacc=2,
            stages=(StageConfig(layers=24, microbatch=4, dp=1, tp=4),),
        )
        with pytest.raises(PlanValidationError, match="node"):
            plan.validate(model, tiny)

    def test_inflight_1f1b(self, model, cluster):
        plan = uniform_plan(model, cluster, global_batch=16, gacc=4,
                            num_stages=4, dp=1, tp=1)
        assert plan.inflight(0) == 4
        assert plan.inflight(3) == 1


class TestObjectives:
    def test_eq1_balanced_no_delta(self):
        t = [1.0, 1.0, 1.0]
        d = [0.0, 0.0, 0.0]
        assert pipeline_iteration_time(t, d, gacc=5) == pytest.approx(
            4 * 1.0 + 3.0
        )

    def test_eq1_delta_hidden_by_ramp(self):
        """A late stage's delta overlaps earlier stages' work (Fig. 10)."""
        t = [1.0, 1.0, 1.0]
        no_delta = pipeline_iteration_time(t, [0, 0, 0], gacc=4)
        hidden = pipeline_iteration_time(t, [0, 0, 1.5], gacc=4)
        exposed = pipeline_iteration_time(t, [2.5, 0, 0], gacc=4)
        assert hidden == pytest.approx(no_delta)  # 1.5 < prefix 2.0
        assert exposed == pytest.approx(no_delta + 2.5)

    def test_uniform_ignores_delta(self):
        t = [1.0, 2.0]
        assert pipeline_time_uniform(t, gacc=3) == pytest.approx(
            2 * 2.0 + 3.0
        )

    def test_average_spreads_delta(self):
        """A late-stage delta partially hides in the ramp under Eq. 1 but
        inflates every microbatch under the averaged model."""
        t = np.array([1.0, 1.0])
        d = np.array([0.0, 4.0])
        avg = pipeline_time_average(t, d, gacc=4)
        aware = pipeline_iteration_time(t, d, gacc=4)
        assert avg > aware

    def test_throughput(self):
        assert throughput(128, 2.0) == 64.0
        with pytest.raises(ValueError):
            throughput(128, 0.0)

    @settings(max_examples=80, deadline=None)
    @given(
        t=st.lists(st.floats(min_value=0.01, max_value=5), min_size=1,
                   max_size=6),
        gacc=st.integers(min_value=1, max_value=32),
    )
    def test_eq1_bounds_property(self, t, gacc):
        """Iteration time is within [steady-state, steady + fill + drain]."""
        d = [0.0] * len(t)
        total = pipeline_iteration_time(t, d, gacc)
        assert total >= (gacc - 1) * max(t) - 1e-9
        assert total <= gacc * max(t) + sum(t) + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(
        t=st.lists(st.floats(min_value=0.01, max_value=5), min_size=1,
                   max_size=6),
        d=st.lists(st.floats(min_value=0.0, max_value=5), min_size=1,
                   max_size=6),
        gacc=st.integers(min_value=1, max_value=16),
    )
    def test_deltas_never_reduce_time(self, t, d, gacc):
        n = min(len(t), len(d))
        t, d = t[:n], d[:n]
        base = pipeline_iteration_time(t, [0.0] * n, gacc)
        with_d = pipeline_iteration_time(t, d, gacc)
        assert with_d >= base - 1e-9


class TestPlanSerialization:
    PLAN = TrainingPlan(
        global_batch=64, gacc=4,
        stages=(
            StageConfig(layers=12, microbatch=2, dp=4, tp=2, zero=2,
                        ckpt=6, oo=0.5, ao=0.25),
            StageConfig(layers=12, microbatch=2, dp=2, tp=4, zero=1,
                        wo=1.0, go=0.5),
        ),
        source="test", metadata={"note": "round-trip"},
    )

    def test_dict_round_trip(self):
        assert TrainingPlan.from_dict(self.PLAN.to_dict()) == self.PLAN

    def test_json_round_trip_byte_identical(self):
        text = self.PLAN.to_json()
        again = TrainingPlan.from_json(text)
        assert again == self.PLAN
        assert again.to_json() == text

    def test_stage_config_round_trip(self):
        stage = self.PLAN.stages[0]
        assert StageConfig.from_dict(stage.to_dict()) == stage

    def test_metadata_preserved(self):
        again = TrainingPlan.from_json(self.PLAN.to_json())
        assert again.metadata == {"note": "round-trip"}

    @settings(max_examples=40, deadline=None)
    @given(
        layers=st.integers(min_value=1, max_value=48),
        microbatch=st.integers(min_value=1, max_value=8),
        dp=st.integers(min_value=1, max_value=8),
        tp=st.integers(min_value=1, max_value=8),
        zero=st.integers(min_value=0, max_value=3),
        oo=st.floats(min_value=0.0, max_value=1.0),
        gacc=st.integers(min_value=1, max_value=16),
    )
    def test_round_trip_property(self, layers, microbatch, dp, tp, zero,
                                 oo, gacc):
        plan = TrainingPlan(
            global_batch=microbatch * dp * gacc, gacc=gacc,
            stages=(StageConfig(layers=layers, microbatch=microbatch,
                                dp=dp, tp=tp, zero=zero,
                                ckpt=layers // 2, oo=oo),),
        )
        assert TrainingPlan.from_json(plan.to_json()) == plan
