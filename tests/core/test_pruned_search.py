"""Pruning correctness: the prune-and-memoize engine vs exhaustive.

The acceptance property of the engine is *bit-identity*: for any job,
``search(prune=True)`` must return byte-identical ``TrainingPlan``s
(winner *and* ``top_plans``) and the exact same predicted objective as
the exhaustive reference path — pruning may only skip work that
provably cannot change the ranking. The corpus below mixes hand-picked
and seeded-random small jobs, including heterogeneous clusters, plus
coverage for the service hooks and the memoization layer under
pruning.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    NAMED_SPACES,
    MenuMemo,
    MistTuner,
    SearchCancelled,
)
from repro.evaluation import calibrated_interference
from repro.evaluation.workloads import get_scale
from repro.hardware import DeviceGroup, HeterogeneousCluster, make_cluster
from repro.models import get_model

SMOKE = get_scale("smoke")
QUICK = get_scale("quick")


def _mixed_cluster() -> HeterogeneousCluster:
    return HeterogeneousCluster(groups=(
        DeviceGroup("a100", make_cluster("A100-40GB", 1, 2)),
        DeviceGroup("l4", make_cluster("L4", 1, 2)),
    ))


def _case(model, cluster, batch, space, keep_top, seq_len=2048,
          scale=SMOKE, interference=True):
    return dict(model=model, cluster=cluster, batch=batch, space=space,
                keep_top=keep_top, seq_len=seq_len, scale=scale,
                interference=interference)


def _corpus():
    cases = [
        _case("gpt3-1.3b", make_cluster("L4", 1, 2), 16, "mist", 3),
        _case("gpt3-1.3b", make_cluster("L4", 1, 4), 32, "3d", 1),
        _case("gpt3-2.7b", make_cluster("L4", 1, 4), 32, "3d-ckpt", 2,
              scale=QUICK),
        _case("gpt3-2.7b", make_cluster("A100-40GB", 1, 4), 32, "mist", 3,
              seq_len=1024),
        _case("gpt3-1.3b", _mixed_cluster(), 16, "mist", 3),
        _case("gpt3-1.3b", _mixed_cluster(), 32, "3d-zero", 1),
    ]
    rng = random.Random(20260730)
    for _ in range(5):
        gpus = rng.choice([2, 4, 8])
        cases.append(_case(
            model=rng.choice(["gpt3-1.3b", "gpt3-2.7b"]),
            cluster=make_cluster(rng.choice(["L4", "A100-40GB"]), 1, gpus),
            batch=rng.choice([16, 32, 64]),
            space=rng.choice(["3d", "3d-zero", "mist"]),
            keep_top=rng.choice([1, 3]),
            seq_len=rng.choice([1024, 2048]),
            interference=rng.choice([True, False]),
        ))
    return cases


def _make_tuner(case) -> MistTuner:
    cluster = case["cluster"]
    pcie_only = True
    if not isinstance(cluster, HeterogeneousCluster):
        pcie_only = not cluster.gpu.has_nvlink
    interference = (calibrated_interference(pcie_only)
                    if case["interference"] else None)
    return MistTuner(
        get_model(case["model"]), cluster, seq_len=case["seq_len"],
        space=case["scale"].apply(NAMED_SPACES[case["space"]]),
        interference=interference,
        max_pareto_points=case["scale"].max_pareto_points,
        max_gacc_candidates=case["scale"].max_gacc_candidates,
    )


def _plan_bytes(plan):
    return None if plan is None else plan.to_json()


class TestBitIdentity:
    @pytest.mark.parametrize("case", _corpus(),
                             ids=lambda c: f"{c['model']}-{c['space']}"
                                           f"-B{c['batch']}-k{c['keep_top']}")
    def test_pruned_matches_exhaustive(self, case):
        tuner = _make_tuner(case)
        exhaustive = tuner.search(case["batch"], keep_top=case["keep_top"],
                                  prune=False)
        pruned = tuner.search(case["batch"], keep_top=case["keep_top"],
                              prune=True, memo=MenuMemo())
        assert _plan_bytes(pruned.best_plan) \
            == _plan_bytes(exhaustive.best_plan)
        assert [_plan_bytes(p) for p in pruned.top_plans] \
            == [_plan_bytes(p) for p in exhaustive.top_plans]
        assert pruned.predicted_iteration_time \
            == exhaustive.predicted_iteration_time
        assert pruned.predicted_throughput == exhaustive.predicted_throughput

        stats = pruned.stats
        assert stats is not None and stats.prune
        assert stats.cells_explored + stats.cells_pruned \
            + stats.cells_infeasible == stats.cells_total
        assert stats.memo_misses > 0 or stats.cells_explored == 0

    def test_work_accounting_is_deterministic(self):
        # configs_evaluated must not depend on memo warmth: a hit
        # replays the counters its original computation recorded
        case = _corpus()[0]
        tuner = _make_tuner(case)
        cold = tuner.search(case["batch"], memo=MenuMemo())
        warm_memo = MenuMemo()
        first = tuner.search(case["batch"], memo=warm_memo)
        second = tuner.search(case["batch"], memo=warm_memo)
        assert first.configurations_evaluated \
            == cold.configurations_evaluated
        assert second.configurations_evaluated \
            == first.configurations_evaluated
        assert second.stats.configs_prefiltered \
            == first.stats.configs_prefiltered
        assert second.stats.memo_hits > 0
        assert _plan_bytes(second.best_plan) == _plan_bytes(first.best_plan)


class TestHooksUnderPruning:
    def _tuner(self):
        return _make_tuner(_case("gpt3-1.3b", make_cluster("L4", 1, 4),
                                 16, "mist", 3))

    def test_progress_fires_for_pruned_and_explored_cells(self):
        tuner = self._tuner()
        calls: list[tuple[int, int]] = []
        result = tuner.search(16, memo=MenuMemo(),
                              progress=lambda done, total: calls.append(
                                  (done, total)))
        assert result.found
        total = len(tuner._sg_grid(16))
        assert calls == [(i + 1, total) for i in range(total)]
        stats = result.stats
        # pruned/infeasible cells still count toward progress
        assert stats.cells_explored < stats.cells_total or \
            stats.cells_pruned + stats.cells_infeasible == 0

    def test_should_stop_cancels_between_cells(self):
        tuner = self._tuner()
        seen = [0]

        def should_stop():
            seen[0] += 1
            return seen[0] > 2

        with pytest.raises(SearchCancelled):
            tuner.search(16, memo=MenuMemo(), should_stop=should_stop)

    def test_should_stop_checked_before_first_cell(self):
        tuner = self._tuner()
        with pytest.raises(SearchCancelled):
            tuner.search(16, memo=MenuMemo(), should_stop=lambda: True)


class TestMemoSharing:
    def test_memo_shared_across_parallel_workers(self):
        case = _case("gpt3-1.3b", make_cluster("L4", 1, 4), 16, "mist", 3)
        tuner = _make_tuner(case)
        memo = MenuMemo()
        serial = tuner.search(16, memo=memo)
        fanout = tuner.search(16, parallelism=4, memo=memo)
        assert fanout.stats.memo_hits > 0
        assert _plan_bytes(fanout.best_plan) == _plan_bytes(serial.best_plan)
        assert [_plan_bytes(p) for p in fanout.top_plans] \
            == [_plan_bytes(p) for p in serial.top_plans]

    def test_memo_eviction_bounds_size(self):
        memo = MenuMemo(maxsize=2)
        from repro.core.memo import MemoEntry
        for i in range(5):
            memo.store(("key", i), MemoEntry(menus={}, evaluated=i,
                                             prefiltered=0))
        assert len(memo) == 2
        assert memo.lookup(("key", 0)) is None
        assert memo.lookup(("key", 4)) is not None

    def test_distinct_tuner_scopes_never_share(self):
        memo = MenuMemo()
        a = _make_tuner(_case("gpt3-1.3b", make_cluster("L4", 1, 2), 16,
                              "mist", 3))
        b = _make_tuner(_case("gpt3-1.3b", make_cluster("L4", 1, 2), 16,
                              "3d", 3))
        a.search(16, memo=memo)
        second = b.search(16, memo=memo)
        assert second.stats.memo_hits == 0
