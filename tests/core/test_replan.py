"""Warm-started replanning: bit-identity to cold search, cheaper work.

The contract of :meth:`MistTuner.replan` is the same bit-identity the
pruned search guarantees — the incumbent plan only chooses *where to
look first*, never what is returned — plus a work reduction: pruning
against the best solved objective (k=1) from a strong first cell must
evaluate at most as many configurations as the cold search, and >=2x
fewer on the link-degradation scenario the CI perf gate measures.
"""

from __future__ import annotations

import pytest

from repro.core import MenuMemo, MistTuner, NAMED_SPACES, uniform_plan
from repro.evaluation.workloads import get_scale
from repro.hardware import (
    ClusterDelta,
    DeviceGroup,
    HeterogeneousCluster,
    make_cluster,
)
from repro.models import get_model

SMOKE = get_scale("smoke")


def _tuner(model_name, cluster) -> MistTuner:
    return MistTuner(
        get_model(model_name), cluster, seq_len=2048,
        space=SMOKE.apply(NAMED_SPACES["mist"]),
        max_pareto_points=SMOKE.max_pareto_points,
        max_gacc_candidates=SMOKE.max_gacc_candidates,
    )


def _plan_bytes(plan):
    return None if plan is None else plan.to_json()


def _mixed_cluster() -> HeterogeneousCluster:
    return HeterogeneousCluster(groups=(
        DeviceGroup("a100", make_cluster("A100-40GB", 1, 4)),
        DeviceGroup("l4", make_cluster("L4", 1, 4)),
    ))


class TestBitIdentity:
    @pytest.mark.parametrize("model,cluster,batch,delta", [
        ("gpt3-1.3b", make_cluster("L4", 1, 8), 64,
         ClusterDelta.degrade_link(0.5)),
        ("gpt3-2.7b", make_cluster("L4", 2, 4), 32,
         ClusterDelta.remove_nodes(1)),
        ("gpt3-1.3b", _mixed_cluster(), 32,
         ClusterDelta.resize_group("l4", gpus_per_node=2)),
    ], ids=["degrade-link", "shrink-node", "hetero-resize"])
    def test_warm_matches_cold(self, model, cluster, batch, delta):
        incumbent = _tuner(model, cluster).search(
            batch, keep_top=1, memo=MenuMemo()).best_plan
        assert incumbent is not None
        new_cluster = delta.apply(cluster)
        cold = _tuner(model, new_cluster).search(
            batch, keep_top=1, memo=MenuMemo())
        warm = _tuner(model, new_cluster).replan(
            batch, incumbent=incumbent, memo=MenuMemo())
        assert _plan_bytes(warm.best_plan) == _plan_bytes(cold.best_plan)
        assert warm.predicted_iteration_time \
            == cold.predicted_iteration_time
        assert warm.stats is not None and warm.stats.warm
        seed = warm.stats.warm_seed
        assert seed["num_stages"] == incumbent.num_stages
        assert seed["gacc"] == incumbent.gacc
        assert isinstance(seed["matched"], bool)
        # k=1 pruning from a strong first cell never does *more* work
        assert warm.configurations_evaluated \
            <= cold.configurations_evaluated

    def test_warm_speedup_on_ci_gate_scenario(self):
        # the scenario the perf job's --min-warm-speedup gate leans on:
        # a cold service solve protects top_plans (keep_top=3 default)
        # while the replan wants *the* plan (k=1 cut + incumbent-first
        # ordering). Counters are deterministic, so this cannot flake.
        cluster = make_cluster("L4", 1, 8)
        result = _tuner("gpt3-1.3b", cluster).search(64, memo=MenuMemo())
        incumbent = result.best_plan
        new_cluster = ClusterDelta.degrade_link(0.5).apply(cluster)
        cold = _tuner("gpt3-1.3b", new_cluster).search(64, memo=MenuMemo())
        warm = _tuner("gpt3-1.3b", new_cluster).replan(
            64, incumbent=incumbent, memo=MenuMemo())
        assert _plan_bytes(warm.best_plan) == _plan_bytes(cold.best_plan)
        assert warm.stats.warm_seed["matched"] is True
        assert warm.configurations_evaluated * 2 \
            <= cold.configurations_evaluated


class TestWarmStartMechanics:
    def test_unmatched_incumbent_falls_back_to_cold_ordering(self):
        # a 4-stage incumbent cannot exist on a 2-GPU cluster: the
        # replan must record matched=False and still answer exactly
        # what a cold search answers
        incumbent = uniform_plan(
            get_model("gpt3-1.3b"), make_cluster("L4", 1, 8),
            global_batch=16, gacc=4, num_stages=4, dp=2, tp=1)
        new_cluster = make_cluster("L4", 1, 2)
        cold = _tuner("gpt3-1.3b", new_cluster).search(
            16, keep_top=1, memo=MenuMemo())
        warm = _tuner("gpt3-1.3b", new_cluster).replan(
            16, incumbent=incumbent, memo=MenuMemo())
        assert warm.stats.warm_seed["matched"] is False
        assert _plan_bytes(warm.best_plan) == _plan_bytes(cold.best_plan)
        assert warm.predicted_iteration_time \
            == cold.predicted_iteration_time

    def test_unchanged_group_menus_replay_from_memo(self):
        # per-device-group memo scoping: a delta that only touches the
        # l4 group keeps the a100 group's memo entries valid, so the
        # warm replan replays them instead of recomputing
        cluster = _mixed_cluster()
        memo = MenuMemo()
        incumbent = _tuner("gpt3-1.3b", cluster).search(
            32, keep_top=1, memo=memo).best_plan
        new_cluster = ClusterDelta.resize_group(
            "l4", gpus_per_node=2).apply(cluster)
        warm = _tuner("gpt3-1.3b", new_cluster).replan(
            32, incumbent=incumbent, memo=memo)
        assert warm.stats.memo_hits > 0

    def test_counters_independent_of_memo_warmth(self):
        # a replan on a warm memo reports the same configs_evaluated
        # as on a cold one — the CI speedup gate depends on this
        cluster = make_cluster("L4", 1, 4)
        incumbent = _tuner("gpt3-1.3b", cluster).search(
            16, keep_top=1, memo=MenuMemo()).best_plan
        new_cluster = ClusterDelta.degrade_link(0.5).apply(cluster)
        shared = MenuMemo()
        first = _tuner("gpt3-1.3b", new_cluster).replan(
            16, incumbent=incumbent, memo=shared)
        second = _tuner("gpt3-1.3b", new_cluster).replan(
            16, incumbent=incumbent, memo=shared)
        assert second.configurations_evaluated \
            == first.configurations_evaluated
        assert second.stats.memo_hits > 0
        assert _plan_bytes(second.best_plan) == _plan_bytes(first.best_plan)

    def test_stats_round_trip_warm_fields(self):
        from repro.core import SearchStats
        stats = SearchStats(warm=True,
                            warm_seed={"num_stages": 2, "gacc": 4,
                                       "matched": True})
        again = SearchStats.from_dict(stats.to_dict())
        assert again.warm and again.warm_seed == stats.warm_seed
