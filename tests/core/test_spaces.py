"""Tests for search-space definitions and configuration counting."""

import math

import pytest

from repro.core import (
    INCREMENTAL_SPACES,
    SPACE_3D,
    SPACE_3D_CKPT,
    SPACE_3D_ZERO,
    SPACE_MIST,
    log10_configurations,
)
from repro.evaluation.workloads import SCALES


class TestSpaceDefinitions:
    def test_incremental_spaces_grow(self):
        """Each Fig. 13 increment enables strictly more options."""
        def richness(space):
            score = len(space.zero_levels)
            score += 10 if space.tune_ckpt else 0
            for grid in (space.oo_grid, space.ao_grid, space.go_grid,
                         space.wo_grid):
                score += len(grid)
            return score

        scores = [richness(s) for s in INCREMENTAL_SPACES]
        assert scores == sorted(scores)
        assert scores[0] < scores[-1]

    def test_3d_space_is_megatron_like(self):
        assert SPACE_3D.zero_levels == (0, 1)
        assert not SPACE_3D.tune_ckpt
        assert not SPACE_3D.tunes_offloading
        assert SPACE_3D.layer_slack == 0

    def test_mist_space_has_everything(self):
        assert 3 in SPACE_MIST.zero_levels
        assert SPACE_MIST.tune_ckpt
        assert SPACE_MIST.tunes_offloading
        assert SPACE_MIST.imbalance_aware

    def test_with_returns_new_instance(self):
        derived = SPACE_3D.with_(name="x", tune_ckpt=True)
        assert derived.tune_ckpt and not SPACE_3D.tune_ckpt

    def test_zero_space_between(self):
        assert SPACE_3D_ZERO.zero_levels == (0, 1, 2, 3)
        assert not SPACE_3D_ZERO.tune_ckpt
        assert SPACE_3D_CKPT.tune_ckpt


class TestScalePresets:
    def test_apply_never_widens(self):
        for scale in SCALES.values():
            applied = scale.apply(SPACE_MIST)
            assert len(applied.oo_grid) <= len(SPACE_MIST.oo_grid)
            assert applied.ckpt_grid_points <= SPACE_MIST.ckpt_grid_points
            assert applied.layer_slack <= SPACE_MIST.layer_slack

    def test_apply_preserves_disabled_grids(self):
        scale = SCALES["quick"]
        applied = scale.apply(SPACE_3D)
        assert applied.oo_grid == (0.0,)  # stays disabled

    def test_smoke_coarser_than_full(self):
        smoke = SCALES["smoke"].apply(SPACE_MIST)
        full = SCALES["full"].apply(SPACE_MIST)
        assert len(smoke.oo_grid) < len(full.oo_grid)


class TestConfigurationCounting:
    def test_monotone_in_layers(self):
        counts = [log10_configurations(n, 32) for n in (16, 32, 64, 80)]
        assert counts == sorted(counts)

    def test_each_optimization_increases_count(self):
        base = log10_configurations(48, 32)
        zero = log10_configurations(48, 32, zero=True)
        ckpt = log10_configurations(48, 32, zero=True, ckpt=True)
        everything = log10_configurations(
            48, 32, zero=True, ckpt=True, oo=True, go=True, po=True,
            ao=True,
        )
        assert base < zero < ckpt < everything

    def test_full_space_is_astronomical(self):
        full = log10_configurations(80, 32, zero=True, ckpt=True, oo=True,
                                    go=True, po=True, ao=True)
        assert full > 100  # paper Figure 5 reaches ~10^150

    def test_finite_values(self):
        value = log10_configurations(16, 2)
        assert math.isfinite(value) and value > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            log10_configurations(0, 8)
        with pytest.raises(ValueError):
            log10_configurations(8, 0)
