"""Integration tests for the hierarchical MistTuner."""

import pytest

from repro.core import (
    MistTuner,
    SPACE_3D,
    SPACE_3D_ZERO,
    SPACE_MIST,
)
from repro.evaluation import calibrated_interference
from repro.execution import ExecutionEngine
from repro.hardware import make_cluster
from repro.models import get_model

MODEL = get_model("gpt3-1.3b")
CLUSTER = make_cluster("L4", 1, 2)
SEQ_LEN = 2048
BATCH = 16


def make_tuner(space=SPACE_MIST, **kwargs):
    defaults = dict(seq_len=SEQ_LEN, flash=True, space=space,
                    interference=calibrated_interference(True),
                    max_pareto_points=4, max_gacc_candidates=3)
    defaults.update(kwargs)
    return MistTuner(MODEL, CLUSTER, **defaults)


@pytest.fixture(scope="module")
def mist_result():
    return make_tuner().search(BATCH)


class TestTuner:
    def test_finds_valid_plan(self, mist_result):
        assert mist_result.found
        mist_result.best_plan.validate(MODEL, CLUSTER)

    def test_plan_executes_without_oom(self, mist_result):
        engine = ExecutionEngine(CLUSTER, system="mist")
        result = engine.run(mist_result.best_plan, MODEL, seq_len=SEQ_LEN)
        assert result.throughput > 0

    def test_prediction_close_to_execution(self, mist_result):
        engine = ExecutionEngine(CLUSTER, system="mist")
        result = engine.run(mist_result.best_plan, MODEL, seq_len=SEQ_LEN)
        err = abs(result.iteration_time
                  - mist_result.predicted_iteration_time)
        assert err / result.iteration_time < 0.10

    def test_search_log_populated(self, mist_result):
        assert mist_result.search_log
        assert all("num_stages" in entry for entry in mist_result.search_log)

    def test_wider_space_never_predicts_worse(self):
        narrow = make_tuner(space=SPACE_3D).search(BATCH)
        wide = make_tuner(space=SPACE_MIST).search(BATCH)
        assert wide.found and narrow.found
        assert wide.predicted_throughput >= narrow.predicted_throughput * 0.99

    def test_zero_space_includes_zero_configs(self):
        result = make_tuner(space=SPACE_3D_ZERO).search(BATCH)
        assert result.found

    def test_gacc_candidates_capped(self):
        tuner = make_tuner(max_gacc_candidates=2)
        assert len(tuner._gacc_candidates(256, 1)) <= 2

    def test_layer_counts_around_balance(self):
        tuner = make_tuner()
        counts = tuner._layer_counts(2)
        assert 12 in counts
        assert min(counts) >= 1

    def test_imbalance_unaware_variant_runs(self):
        space = SPACE_MIST.with_(name="no-imb", imbalance_aware=False)
        result = make_tuner(space=space).search(BATCH)
        assert result.found

    def test_deprecated_tune_alias(self, mist_result):
        with pytest.deprecated_call():
            legacy = make_tuner().tune(BATCH)
        assert legacy.best_plan == mist_result.best_plan
