"""Integration tests for the hierarchical MistTuner."""

import pytest

from repro.core import (
    MistTuner,
    SPACE_3D,
    SPACE_3D_ZERO,
    SPACE_MIST,
)
from repro.evaluation import calibrated_interference
from repro.execution import ExecutionEngine
from repro.hardware import make_cluster
from repro.models import get_model

MODEL = get_model("gpt3-1.3b")
CLUSTER = make_cluster("L4", 1, 2)
SEQ_LEN = 2048
BATCH = 16


def make_tuner(space=SPACE_MIST, **kwargs):
    defaults = dict(seq_len=SEQ_LEN, flash=True, space=space,
                    interference=calibrated_interference(True),
                    max_pareto_points=4, max_gacc_candidates=3)
    defaults.update(kwargs)
    return MistTuner(MODEL, CLUSTER, **defaults)


@pytest.fixture(scope="module")
def mist_result():
    return make_tuner().search(BATCH)


class TestTuner:
    def test_finds_valid_plan(self, mist_result):
        assert mist_result.found
        mist_result.best_plan.validate(MODEL, CLUSTER)

    def test_plan_executes_without_oom(self, mist_result):
        engine = ExecutionEngine(CLUSTER, system="mist")
        result = engine.run(mist_result.best_plan, MODEL, seq_len=SEQ_LEN)
        assert result.throughput > 0

    def test_prediction_close_to_execution(self, mist_result):
        engine = ExecutionEngine(CLUSTER, system="mist")
        result = engine.run(mist_result.best_plan, MODEL, seq_len=SEQ_LEN)
        err = abs(result.iteration_time
                  - mist_result.predicted_iteration_time)
        assert err / result.iteration_time < 0.10

    def test_search_log_populated(self, mist_result):
        assert mist_result.search_log
        assert all("num_stages" in entry for entry in mist_result.search_log)

    def test_wider_space_never_predicts_worse(self):
        narrow = make_tuner(space=SPACE_3D).search(BATCH)
        wide = make_tuner(space=SPACE_MIST).search(BATCH)
        assert wide.found and narrow.found
        assert wide.predicted_throughput >= narrow.predicted_throughput * 0.99

    def test_zero_space_includes_zero_configs(self):
        result = make_tuner(space=SPACE_3D_ZERO).search(BATCH)
        assert result.found

    def test_gacc_candidates_capped(self):
        tuner = make_tuner(max_gacc_candidates=2)
        assert len(tuner._gacc_candidates(256, 1)) <= 2

    def test_layer_counts_around_balance(self):
        tuner = make_tuner()
        counts = tuner._layer_counts(2)
        assert 12 in counts
        assert min(counts) >= 1

    def test_imbalance_unaware_variant_runs(self):
        space = SPACE_MIST.with_(name="no-imb", imbalance_aware=False)
        result = make_tuner(space=space).search(BATCH)
        assert result.found

    def test_deprecated_tune_alias(self, mist_result):
        with pytest.deprecated_call():
            legacy = make_tuner().tune(BATCH)
        assert legacy.best_plan == mist_result.best_plan


class TestSearchHooks:
    """The service-facing hooks: progress relay + cooperative cancel."""

    def test_progress_called_once_per_cell(self):
        tuner = make_tuner()
        calls = []
        result = tuner.search(BATCH,
                              progress=lambda done, total: calls.append(
                                  (done, total)))
        assert result.found
        total = calls[0][1]
        assert total == len(tuner._sg_grid(BATCH))
        assert calls == [(i + 1, total) for i in range(total)]

    def test_progress_called_from_parallel_search(self):
        tuner = make_tuner()
        calls = []
        parallel = tuner.search(BATCH, parallelism=4,
                                progress=lambda done, total: calls.append(
                                    (done, total)))
        serial = make_tuner().search(BATCH)
        # every cell reported exactly once, monotonically
        assert sorted(done for done, _ in calls) == list(
            range(1, len(calls) + 1))
        # hooks must not perturb the search outcome
        assert parallel.best_plan == serial.best_plan

    def test_should_stop_raises_search_cancelled(self):
        from repro.core import SearchCancelled

        tuner = make_tuner()
        with pytest.raises(SearchCancelled):
            tuner.search(BATCH, should_stop=lambda: True)

    def test_cancel_mid_search(self):
        from repro.core import SearchCancelled

        tuner = make_tuner()
        seen = []

        def progress(done, total):
            seen.append(done)

        # trip the flag once the first cell lands; the next cell must
        # not start
        with pytest.raises(SearchCancelled):
            tuner.search(BATCH, progress=progress,
                         should_stop=lambda: bool(seen))
        assert len(seen) < len(tuner._sg_grid(BATCH))

    def test_no_hooks_unchanged(self):
        # hook-free search stays identical to the pre-hook behavior
        hookless = make_tuner().search(BATCH)
        hooked = make_tuner().search(BATCH, progress=lambda d, t: None,
                                     should_stop=lambda: False)
        assert hookless.best_plan == hooked.best_plan
