"""Tests for interference-model calibration against the engine oracle."""

import numpy as np
import pytest

from repro.costmodel import fit_interference_model, sample_corun_workloads
from repro.execution import ContentionSpec, make_oracle


class TestWorkloadSampling:
    def test_shape_and_nonnegativity(self):
        workloads = sample_corun_workloads(64, seed=1)
        assert workloads.shape == (64, 4)
        assert (workloads >= 0).all()

    def test_all_concurrency_levels_present(self):
        workloads = sample_corun_workloads(256, seed=2)
        active_counts = (workloads > 0).sum(axis=1)
        assert set(active_counts) == {1, 2, 3, 4}

    def test_deterministic_by_seed(self):
        a = sample_corun_workloads(32, seed=5)
        b = sample_corun_workloads(32, seed=5)
        np.testing.assert_array_equal(a, b)


class TestFitting:
    @pytest.fixture(scope="class")
    def result(self):
        spec = ContentionSpec.default(pcie_only=True)
        return fit_interference_model(make_oracle(spec), pcie_only=True,
                                      n_samples=128, seed=3)

    def test_fit_converges(self, result):
        assert result.mean_abs_error < 0.05
        assert result.n_samples == 128

    def test_fitted_model_predicts_oracle(self, result):
        spec = ContentionSpec.default(pcie_only=True)
        oracle = make_oracle(spec)
        fresh = sample_corun_workloads(64, seed=99)
        measured = oracle(fresh)
        predicted = result.model.predict(fresh[:, 0], fresh[:, 1],
                                         fresh[:, 2], fresh[:, 3])
        rel = np.abs(predicted - measured) / np.maximum(measured, 1e-9)
        assert rel.mean() < 0.08  # held-out generalization

    def test_oracle_shape_validated(self):
        with pytest.raises(ValueError):
            fit_interference_model(lambda w: np.zeros((3, 3)),
                                   pcie_only=True, n_samples=8)

    def test_factors_stay_above_one(self, result):
        for entry in result.model.factors.values():
            for value in entry.values():
                assert value >= 1.0
