"""Tests for the interference model (Algorithm 1) and communication costs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    InterferenceModel,
    all_gather_time,
    all_reduce_time,
    host_copy_time,
    p2p_time,
    reduce_scatter_time,
)
from repro.symbolic import evaluate


class TestCommFormulas:
    def test_allreduce_ring_volume(self):
        t = all_reduce_time(1e9, 4, 100e9)
        assert evaluate(t, {}) == pytest.approx(2 * 3 / 4 * 1e9 / 100e9)

    def test_allreduce_single_rank_free(self):
        assert evaluate(all_reduce_time(1e9, 1, 100e9, 1e-5), {}) == 0.0

    def test_allgather_is_half_allreduce(self):
        ar = evaluate(all_reduce_time(1e9, 8, 100e9), {})
        ag = evaluate(all_gather_time(1e9, 8, 100e9), {})
        assert ag == pytest.approx(ar / 2)

    def test_reduce_scatter_equals_allgather(self):
        assert evaluate(reduce_scatter_time(2e9, 8, 50e9), {}) == evaluate(
            all_gather_time(2e9, 8, 50e9), {}
        )

    def test_latency_term_scales_with_ranks(self):
        t4 = evaluate(all_reduce_time(0, 4, 1e9, 1e-5), {})
        t8 = evaluate(all_reduce_time(0, 8, 1e9, 1e-5), {})
        assert t8 > t4

    def test_p2p_and_host_copy(self):
        assert evaluate(p2p_time(1e9, 10e9, 1e-5), {}) == pytest.approx(0.10001)
        assert evaluate(host_copy_time(13e9, 13e9), {}) == pytest.approx(1.0)

    def test_symbolic_group_size(self):
        from repro.symbolic import Sym

        n = Sym("n", integer=True)
        t = all_reduce_time(1e9, n, 100e9)
        assert evaluate(t, {"n": 1}) == 0.0
        assert evaluate(t, {"n": 4}) > 0.0


class TestInterferenceModel:
    @pytest.fixture(scope="class")
    def model(self):
        return InterferenceModel.default(pcie_only=True)

    def test_single_channel_unaffected(self, model):
        assert model.predict_scalar(comp=5e-3) == pytest.approx(5e-3)
        assert model.predict_scalar(g2g=2e-3) == pytest.approx(2e-3)

    def test_two_channels_between_max_and_sum(self, model):
        comp, g2g = 5e-3, 3e-3
        total = model.predict_scalar(comp=comp, g2g=g2g)
        assert max(comp, g2g) < total < comp + g2g

    def test_perfect_overlap_when_factors_one(self):
        model = InterferenceModel.from_pairs({})
        total = model.predict_scalar(comp=5e-3, g2g=3e-3, c2g=1e-3)
        assert total == pytest.approx(5e-3)

    def test_pcie_contention_worse_than_nvlink(self):
        pcie = InterferenceModel.default(pcie_only=True)
        nvlink = InterferenceModel.default(pcie_only=False)
        kwargs = dict(g2g=4e-3, c2g=4e-3)
        assert pcie.predict_scalar(**kwargs) > nvlink.predict_scalar(**kwargs)

    def test_batched_matches_scalar(self, model):
        rng = np.random.default_rng(7)
        times = rng.uniform(0, 5e-3, size=(64, 4))
        batched = model.predict(times[:, 0], times[:, 1], times[:, 2],
                                times[:, 3])
        for i in range(64):
            scalar = model.predict_scalar(*times[i])
            assert batched[i] == pytest.approx(scalar)

    def test_broadcasting(self, model):
        comp = np.linspace(1e-3, 5e-3, 10)
        out = model.predict(comp, 1e-3, 0.0, 0.0)
        assert out.shape == (10,)
        assert np.all(np.diff(out) > 0)

    def test_four_way_concurrency(self, model):
        total = model.predict_scalar(comp=4e-3, g2g=3e-3, c2g=2e-3, g2c=1e-3)
        assert 4e-3 < total < 10e-3

    def test_pair_vector_roundtrip(self, model):
        keys, values = model.pair_vector()
        rebuilt = InterferenceModel.from_pair_vector(keys, values)
        sample = dict(comp=3e-3, g2g=2e-3, c2g=1e-3, g2c=0.5e-3)
        assert rebuilt.predict_scalar(**sample) == pytest.approx(
            model.predict_scalar(**sample)
        )

    @settings(max_examples=100, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0, max_value=1.0, allow_nan=False),
            min_size=4, max_size=4,
        )
    )
    def test_monotone_bounds_property(self, times):
        """Prediction is always within [max(times), factor_cap * sum]."""
        model = InterferenceModel.default(pcie_only=True)
        total = model.predict_scalar(*times)
        assert total >= max(times) - 1e-12
        assert total <= model.max_factor * sum(times) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        base=st.floats(min_value=1e-4, max_value=1.0),
        extra=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_adding_work_never_reduces_total(self, base, extra):
        model = InterferenceModel.default(pcie_only=False)
        t0 = model.predict_scalar(comp=base, g2g=base / 2)
        t1 = model.predict_scalar(comp=base + extra, g2g=base / 2)
        assert t1 >= t0 - 1e-12
