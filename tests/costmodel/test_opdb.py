"""Tests for the analytic operator database."""

import pytest

from repro.costmodel import OperatorDatabase
from repro.hardware import get_gpu
from repro.models import build_transformer_layer, get_model
from repro.symbolic import evaluate


@pytest.fixture(scope="module")
def l4_db():
    return OperatorDatabase(get_gpu("L4"))


@pytest.fixture(scope="module")
def a100_db():
    return OperatorDatabase(get_gpu("A100-40GB"))


def _layer(spec="gpt3-6.7b", flash=True):
    return build_transformer_layer(get_model(spec), flash=flash)


def _layer_fwd_time(db, layer, env):
    return sum(evaluate(db.fwd_time(op), env) for op in layer.ops)


class TestOperatorDatabase:
    def test_positive_times(self, l4_db):
        layer = _layer()
        env = {"b": 2, "s": 2048, "tp": 1}
        for op in layer.ops:
            assert evaluate(l4_db.fwd_time(op), env) > 0
            assert evaluate(l4_db.bwd_time(op), env) > 0

    def test_bigger_batch_is_more_efficient(self, l4_db):
        """Per-sample time falls as microbatch grows (kernel efficiency)."""
        layer = _layer()
        t1 = _layer_fwd_time(l4_db, layer, {"b": 1, "s": 2048, "tp": 1})
        t8 = _layer_fwd_time(l4_db, layer, {"b": 8, "s": 2048, "tp": 1})
        assert t8 / 8 < t1

    def test_tp_reduces_time_sublinearly(self, l4_db):
        """TP=4 cuts compute but hurts per-rank kernel efficiency."""
        layer = _layer()
        t1 = _layer_fwd_time(l4_db, layer, {"b": 4, "s": 2048, "tp": 1})
        t4 = _layer_fwd_time(l4_db, layer, {"b": 4, "s": 2048, "tp": 4})
        assert t1 / 4 < t4 < t1

    def test_a100_faster_than_l4(self, l4_db, a100_db):
        layer = _layer()
        env = {"b": 4, "s": 2048, "tp": 1}
        assert _layer_fwd_time(a100_db, layer, env) < _layer_fwd_time(
            l4_db, layer, env
        )

    def test_flash_faster_than_standard_attention_large_seq(self, l4_db):
        """Non-flash attention is memory-bound at long sequence lengths."""
        env = {"b": 4, "s": 4096, "tp": 1}
        t_flash = _layer_fwd_time(l4_db, _layer(flash=True), env)
        t_std = _layer_fwd_time(l4_db, _layer(flash=False), env)
        assert t_flash < t_std

    def test_bwd_slower_than_fwd(self, l4_db):
        layer = _layer()
        env = {"b": 4, "s": 2048, "tp": 1}
        fwd = _layer_fwd_time(l4_db, layer, env)
        bwd = sum(evaluate(l4_db.bwd_time(op), env) for op in layer.ops)
        assert 1.5 * fwd < bwd < 3.0 * fwd

    def test_memoization(self):
        db = OperatorDatabase(get_gpu("L4"))
        layer = _layer()
        for op in layer.ops:
            db.timings(op)
        lookups_before, misses_before = db.cache_stats
        for op in layer.ops:
            db.timings(op)
        lookups_after, misses_after = db.cache_stats
        assert lookups_after == lookups_before + len(layer.ops)
        assert misses_after == misses_before  # all hits

    def test_realistic_magnitude(self, a100_db):
        """A 6.7B layer fwd at b=1,s=2048 should be ~1-10 ms on A100."""
        layer = _layer()
        t = _layer_fwd_time(a100_db, layer, {"b": 1, "s": 2048, "tp": 1})
        assert 0.5e-3 < t < 20e-3
