"""Tests for workload specs, the runner, and report formatting."""

import pytest

from repro.evaluation import (
    SCALES,
    WorkloadSpec,
    format_series,
    format_table,
    format_throughput_rows,
    paper_workloads,
    run_baseline,
    run_mist,
)
from repro.evaluation.workloads import gpu_count_for_size


class TestWorkloads:
    def test_paper_grid_scaling_rule(self):
        specs = paper_workloads("L4")
        assert len(specs) == 5
        by_size = {s.model_spec: s for s in specs}
        assert by_size["gpt3-1.3b"].num_gpus == 2
        assert by_size["gpt3-22b"].num_gpus == 32
        assert by_size["gpt3-22b"].global_batch == 512

    def test_seq_len_per_gpu_type(self):
        assert paper_workloads("L4")[0].seq_len == 2048
        assert paper_workloads("A100-40GB")[0].seq_len == 4096

    def test_cluster_shape(self):
        spec = WorkloadSpec("gpt3-13b", "L4", 16, 256, 2048)
        cluster = spec.cluster
        assert cluster.total_gpus == 16
        assert cluster.gpus_per_node == 8
        assert cluster.num_nodes == 2

    def test_gpu_count_lookup(self):
        assert gpu_count_for_size("6.7b") == 8
        with pytest.raises(KeyError):
            gpu_count_for_size("100b")

    def test_workload_name_unique_per_config(self):
        a = WorkloadSpec("gpt3-1.3b", "L4", 2, 32, 2048)
        b = WorkloadSpec("gpt3-1.3b", "L4", 2, 32, 2048, flash=False)
        assert a.name != b.name


class TestMixedWorkloads:
    MIXED = {"groups": [
        {"name": "a100", "gpu": "A100-40GB", "num_nodes": 1,
         "gpus_per_node": 2},
        {"name": "l4", "gpu": "L4", "num_nodes": 1, "gpus_per_node": 2},
    ]}

    def test_mixed_workload_derives_shape(self):
        from repro.evaluation.workloads import mixed_workload
        from repro.hardware import HeterogeneousCluster

        spec = mixed_workload(self.MIXED, "gpt3-1.3b", 16)
        assert spec.num_gpus == 4
        assert isinstance(spec.cluster, HeterogeneousCluster)
        assert "2xA100-40GB+2xL4" in spec.name

    def test_mixed_workload_to_job(self):
        from repro.api import TuningJob
        from repro.evaluation.workloads import mixed_workload

        spec = mixed_workload(self.MIXED, "gpt3-1.3b", 16)
        job = TuningJob.from_workload(spec, scale="smoke")
        assert job.cluster == spec.cluster_dict
        assert job.num_gpus == 4

    def test_plain_workloads_have_no_cluster_dict(self):
        spec = paper_workloads("L4")[0]
        assert spec.cluster_dict is None


class TestRunner:
    SPEC = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)

    def test_run_mist_outcome(self):
        outcome = run_mist(self.SPEC, scale=SCALES["smoke"])
        assert outcome.found
        assert outcome.throughput > 0
        assert outcome.plan is not None
        assert "configurations_evaluated" in outcome.extra

    def test_run_baseline_outcome(self):
        outcome = run_baseline(self.SPEC, "megatron")
        assert outcome.found
        assert outcome.extra["candidates_tried"] > 0

    def test_unknown_baseline_rejected(self):
        with pytest.raises(KeyError):
            run_baseline(self.SPEC, "alpa")


class TestRunnerDeprecations:
    SPEC = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)

    def test_baseline_tuners_shim_warns(self):
        import repro.evaluation as evaluation

        with pytest.warns(DeprecationWarning, match="BASELINE_TUNERS"):
            tuners = evaluation.BASELINE_TUNERS
        assert set(tuners) == {"megatron", "deepspeed", "aceso",
                               "uniform-heuristic"}

    def test_runner_module_shim_warns_too(self):
        from repro.evaluation import runner

        with pytest.warns(DeprecationWarning):
            runner.BASELINE_TUNERS
        with pytest.raises(AttributeError):
            runner.NO_SUCH_THING

    def test_legacy_uniform_heuristic_alias(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        with pytest.warns(DeprecationWarning, match="uniform"):
            outcome = run_baseline(self.SPEC, "uniform-heuristic")
        assert outcome.found
        assert outcome.system == "uniform-heuristic"


class TestComparison:
    def _comparison(self):
        from repro.evaluation.runner import Comparison, SystemOutcome

        def outcome(name, throughput):
            return SystemOutcome(system=name, plan=None, result=None,
                                 tuning_time_seconds=0.0,
                                 measured={"throughput": throughput})

        spec = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)
        return Comparison(workload=spec, outcomes={
            "megatron": outcome("megatron", 2.0),
            "mist": outcome("mist", 3.0),
        })

    def test_speedup(self):
        assert self._comparison().speedup("mist") == pytest.approx(1.5)

    def test_missing_reference_is_a_clear_valueerror(self):
        with pytest.raises(ValueError) as err:
            self._comparison().speedup("mist", reference="deepspeed")
        message = str(err.value)
        assert "deepspeed" in message
        assert "megatron" in message and "mist" in message

    def test_missing_system_is_a_clear_valueerror(self):
        with pytest.raises(ValueError, match="available"):
            self._comparison().speedup("alpa")


class TestCompareSystemsViaCampaign:
    def test_inline_comparison_over_stub_solvers(self):
        from repro.api import SolveReport, register_solver
        from repro.evaluation import SCALES
        from repro.evaluation.runner import compare_systems

        @register_solver("eval-a", overwrite=True)
        class EvalA:
            def solve(self, job):
                return SolveReport(solver="eval-a", job=job,
                                   measured={"throughput": 2.0,
                                             "iteration_time": 0.1})

        @register_solver("eval-b", overwrite=True)
        class EvalB:
            def solve(self, job):
                return SolveReport(solver="eval-b", job=job,
                                   measured={"throughput": 5.0,
                                             "iteration_time": 0.1})

        spec = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)
        comparison = compare_systems(spec, systems=("eval-a", "eval-b"),
                                     scale=SCALES["smoke"])
        assert comparison.workload is spec
        assert comparison.outcomes["eval-a"].throughput == 2.0
        assert comparison.speedup("eval-b", reference="eval-a") \
            == pytest.approx(2.5)

    def test_failed_system_raises_with_detail(self):
        from repro.api import register_solver
        from repro.evaluation import SCALES
        from repro.evaluation.runner import compare_systems

        @register_solver("eval-boom", overwrite=True)
        class EvalBoom:
            def solve(self, job):
                raise RuntimeError("boom")

        spec = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)
        with pytest.raises(RuntimeError, match="boom"):
            compare_systems(spec, systems=("eval-boom",),
                            scale=SCALES["smoke"])


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_throughput_rows_normalization(self):
        text = format_throughput_rows(
            "T", {"w1": {"megatron": 2.0, "mist": 3.0}}, "megatron"
        )
        assert "1.50x" in text
        assert "1.00x" in text

    def test_throughput_rows_oom_marker(self):
        text = format_throughput_rows(
            "T", {"w1": {"megatron": 2.0, "mist": 0.0}}, "megatron"
        )
        assert "OOM" in text

    def test_format_series(self):
        text = format_series("S", "x", {"m": [1, 2, 3]}, [10, 20, 30])
        assert "10" in text and "m" in text
