"""Integration tests for the execution engine."""

import pytest

from repro.core.plan import StageConfig, TrainingPlan, uniform_plan
from repro.execution import ExecutionEngine, OOMError, render_timeline
from repro.hardware import make_cluster
from repro.models import get_model


@pytest.fixture(scope="module")
def model():
    return get_model("gpt3-2.7b")


@pytest.fixture(scope="module")
def cluster():
    return make_cluster("L4", 1, 4)


@pytest.fixture(scope="module")
def engine(cluster):
    return ExecutionEngine(cluster, system="mist")


def fig2b_plan(model, cluster):
    """The paper's Fig. 2(b) plan: full CKPT, DP=2, PP=2."""
    return uniform_plan(model, cluster, global_batch=8, gacc=4,
                        num_stages=2, dp=2, tp=1, ckpt_all=True)


class TestEngineBasics:
    def test_fig2b_runs_within_memory(self, engine, model, cluster):
        result = engine.run(fig2b_plan(model, cluster), model, seq_len=4096)
        assert result.throughput > 0
        assert all(r.fits for r in result.stage_memory)
        # the paper's example sits near the memory limit
        assert result.peak_memory > 0.85 * result.stage_memory[0].capacity

    def test_no_memopt_ooms(self, engine, model, cluster):
        plan = uniform_plan(model, cluster, global_batch=8, gacc=4,
                            num_stages=2, dp=2, tp=1, ckpt_all=False)
        with pytest.raises(OOMError):
            engine.run(plan, model, seq_len=4096)

    def test_zero2_beats_full_ckpt_pipeline(self, engine, model, cluster):
        """The Fig. 2(d) result: ZeRO-2 + DP=4 beats full-CKPT + PP=2."""
        base = engine.run(fig2b_plan(model, cluster), model, seq_len=4096)
        z2 = uniform_plan(model, cluster, global_batch=8, gacc=1,
                          num_stages=1, dp=4, tp=1, zero=2, ckpt_all=True)
        faster = engine.run(z2, model, seq_len=4096)
        assert faster.throughput > base.throughput

    def test_cooptimized_beats_zero_only(self, engine, model, cluster):
        """The Fig. 2(f) result: ZeRO-2 + reduced CKPT beats ZeRO-2 alone."""
        z2 = uniform_plan(model, cluster, global_batch=8, gacc=1,
                          num_stages=1, dp=4, tp=1, zero=2, ckpt_all=True)
        co = TrainingPlan(
            global_batch=8, gacc=1,
            stages=(StageConfig(layers=32, microbatch=2, dp=4, tp=1,
                                zero=2, ckpt=28),),
        )
        r_z2 = engine.run(z2, model, seq_len=4096)
        r_co = engine.run(co, model, seq_len=4096)
        assert r_co.throughput > r_z2.throughput

    def test_invalid_plan_rejected(self, engine, model, cluster):
        plan = uniform_plan(model, cluster, global_batch=8, gacc=4,
                            num_stages=2, dp=2, tp=1, ckpt_all=True)
        wrong_model = get_model("gpt3-1.3b")
        with pytest.raises(Exception):
            engine.run(plan, wrong_model, seq_len=4096)

    def test_unknown_system_rejected(self, cluster):
        with pytest.raises(ValueError):
            ExecutionEngine(cluster, system="pytorch")


class TestSystemDifferences:
    def test_megatron_faster_than_mist_same_plan(self, model, cluster):
        """Same search space, Mist slightly slower (impl overhead, Fig 13)."""
        plan = fig2b_plan(model, cluster)
        mist = ExecutionEngine(cluster, system="mist").run(
            plan, model, seq_len=4096
        )
        megatron = ExecutionEngine(cluster, system="megatron").run(
            plan, model, seq_len=4096
        )
        assert megatron.throughput > mist.throughput
        assert megatron.throughput < 1.08 * mist.throughput

    def test_offload_plan_hurts_more_without_overlap(self, model, cluster):
        """Mist overlaps offload traffic; DeepSpeed-style serializes it."""
        plan = TrainingPlan(
            global_batch=8, gacc=1,
            stages=(StageConfig(layers=32, microbatch=2, dp=4, tp=1,
                                zero=2, ckpt=32, oo=0.5),),
        )
        mist = ExecutionEngine(cluster, system="mist").run(
            plan, model, seq_len=4096
        )
        ds = ExecutionEngine(cluster, system="deepspeed").run(
            plan, model, seq_len=4096
        )
        assert mist.throughput > ds.throughput

    def test_serial_slowest(self, model, cluster):
        plan = fig2b_plan(model, cluster)
        serial = ExecutionEngine(cluster, system="serial").run(
            plan, model, seq_len=4096
        )
        mist = ExecutionEngine(cluster, system="mist").run(
            plan, model, seq_len=4096
        )
        assert serial.throughput <= mist.throughput * 1.02


class TestTimeline:
    def test_render_contains_all_stages(self, engine, model, cluster):
        result = engine.run(fig2b_plan(model, cluster), model, seq_len=4096)
        art = render_timeline(result.pipeline, width=60)
        assert "stage  0" in art and "stage  1" in art
        assert "idle" in art

    def test_deeper_pipeline_has_bigger_bubbles(self, engine, model, cluster):
        shallow = engine.run(fig2b_plan(model, cluster), model, seq_len=4096)
        deep_plan = uniform_plan(model, cluster, global_batch=8, gacc=4,
                                 num_stages=4, dp=1, tp=1, ckpt_all=True)
        deep = engine.run(deep_plan, model, seq_len=4096)
        assert max(
            deep.pipeline.bubble_fraction(i) for i in range(4)
        ) > max(shallow.pipeline.bubble_fraction(i) for i in range(2))
