"""Tests for the 1F1B pipeline simulator and contention integrator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution import (
    ContentionSpec,
    corun_total_time,
    one_f_one_b_order,
    simulate_pipeline,
)


class TestOneFOneBOrder:
    def test_single_stage_alternates(self):
        order = one_f_one_b_order(1, 3, 0)
        assert order == [("F", 0), ("B", 0), ("F", 1), ("B", 1),
                         ("F", 2), ("B", 2)]

    def test_first_stage_warmup_equals_depth(self):
        order = one_f_one_b_order(4, 8, 0)
        warmup = [op for op in order[:4]]
        assert warmup == [("F", 0), ("F", 1), ("F", 2), ("F", 3)]

    def test_last_stage_no_warmup_beyond_one(self):
        order = one_f_one_b_order(4, 8, 3)
        assert order[0] == ("F", 0)
        assert order[1] == ("B", 0)

    def test_all_microbatches_covered(self):
        for stage in range(4):
            order = one_f_one_b_order(4, 6, stage)
            fwds = sorted(k for kind, k in order if kind == "F")
            bwds = sorted(k for kind, k in order if kind == "B")
            assert fwds == list(range(6))
            assert bwds == list(range(6))

    def test_fewer_microbatches_than_stages(self):
        order = one_f_one_b_order(8, 2, 0)
        assert len(order) == 4

    def test_invalid_stage_raises(self):
        with pytest.raises(ValueError):
            one_f_one_b_order(4, 4, 7)


class TestSimulatePipeline:
    def test_single_stage_serial_time(self):
        result = simulate_pipeline([[1.0, 1.0]], [[2.0, 2.0]])
        assert result.total_time == pytest.approx(6.0)

    def test_perfectly_balanced_pipeline_formula(self):
        """S stages, equal fwd f and bwd b: T = (G-1)(f+b) + S(f+b)."""
        s_num, g = 4, 8
        f, b = 1.0, 2.0
        result = simulate_pipeline(
            [[f] * g for _ in range(s_num)],
            [[b] * g for _ in range(s_num)],
        )
        expected = (g - 1) * (f + b) + s_num * (f + b)
        assert result.total_time == pytest.approx(expected)

    def test_bottleneck_stage_dominates(self):
        slow = simulate_pipeline(
            [[1.0] * 8, [3.0] * 8], [[1.0] * 8, [1.0] * 8]
        )
        fast = simulate_pipeline(
            [[1.0] * 8, [1.0] * 8], [[1.0] * 8, [1.0] * 8]
        )
        assert slow.total_time > fast.total_time

    def test_first_microbatch_delay_propagates(self):
        base = [[1.0] * 4, [1.0] * 4]
        slow_first = [[5.0, 1.0, 1.0, 1.0], [1.0] * 4]
        r0 = simulate_pipeline(base, [[1.0] * 4, [1.0] * 4])
        r1 = simulate_pipeline(slow_first, [[1.0] * 4, [1.0] * 4])
        assert r1.total_time >= r0.total_time + 3.9

    def test_dependencies_respected(self):
        result = simulate_pipeline([[1.0] * 3, [1.0] * 3],
                                   [[1.0] * 3, [1.0] * 3])
        by_key = {(r.kind, r.stage, r.microbatch): r for r in result.timeline}
        for k in range(3):
            assert by_key[("F", 1, k)].start >= by_key[("F", 0, k)].end
            assert by_key[("B", 0, k)].start >= by_key[("B", 1, k)].end

    def test_stage_never_runs_two_phases_at_once(self):
        result = simulate_pipeline([[1.0] * 5, [1.5] * 5],
                                   [[2.0] * 5, [1.0] * 5])
        for stage in range(2):
            phases = sorted((r for r in result.timeline if r.stage == stage),
                            key=lambda r: r.start)
            for a, b in zip(phases, phases[1:]):
                assert b.start >= a.end - 1e-12

    def test_bubble_fraction_positive_in_deep_pipeline(self):
        result = simulate_pipeline([[1.0] * 2 for _ in range(4)],
                                   [[1.0] * 2 for _ in range(4)])
        assert result.bubble_fraction(0) > 0.2

    def test_p2p_delay_increases_total(self):
        fast = simulate_pipeline([[1.0] * 4, [1.0] * 4],
                                 [[1.0] * 4, [1.0] * 4], p2p_delay=0.0)
        slow = simulate_pipeline([[1.0] * 4, [1.0] * 4],
                                 [[1.0] * 4, [1.0] * 4], p2p_delay=0.2)
        assert slow.total_time > fast.total_time

    def test_ragged_arrays_rejected(self):
        with pytest.raises(ValueError):
            simulate_pipeline([[1.0, 1.0], [1.0]], [[1.0, 1.0], [1.0, 1.0]])

    @settings(max_examples=40, deadline=None)
    @given(
        s_num=st.integers(min_value=1, max_value=5),
        g=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_total_at_least_critical_path(self, s_num, g, seed):
        rng = np.random.default_rng(seed)
        fwd = rng.uniform(0.5, 2.0, size=(s_num, g)).tolist()
        bwd = rng.uniform(0.5, 2.0, size=(s_num, g)).tolist()
        result = simulate_pipeline(fwd, bwd)
        per_stage = [sum(fwd[i]) + sum(bwd[i]) for i in range(s_num)]
        assert result.total_time >= max(per_stage) - 1e-9
        assert result.total_time <= sum(per_stage) + 1e-9


class TestContentionIntegrator:
    def test_single_channel_exact(self):
        spec = ContentionSpec.default(pcie_only=True)
        assert corun_total_time([5.0, 0, 0, 0], spec) == pytest.approx(5.0)

    def test_no_contention_equals_max(self):
        spec = ContentionSpec(pair_factors={})
        assert corun_total_time([3.0, 2.0, 1.0, 0.5], spec) == pytest.approx(3.0)

    def test_contention_slows_down(self):
        spec = ContentionSpec.default(pcie_only=True)
        total = corun_total_time([3.0, 2.0, 0, 0], spec)
        assert 3.0 < total < 5.0

    def test_batched_matches_scalar(self):
        spec = ContentionSpec.default(pcie_only=False)
        rng = np.random.default_rng(3)
        batch = rng.uniform(0, 4.0, size=(32, 4))
        totals = corun_total_time(batch, spec)
        for i in range(32):
            assert totals[i] == pytest.approx(
                float(corun_total_time(batch[i], spec))
            )

    @settings(max_examples=60, deadline=None)
    @given(times=st.lists(st.floats(min_value=0, max_value=10),
                          min_size=4, max_size=4))
    def test_bounds_property(self, times):
        spec = ContentionSpec.default(pcie_only=True)
        total = float(corun_total_time(times, spec))
        assert total >= max(times) - 1e-9
        assert total <= spec.max_factor * sum(times) + 1e-9
