"""ClusterDelta: construction, serialization, application, errors."""

import pytest

from repro.hardware import (
    ClusterDelta,
    DeltaError,
    DeviceGroup,
    HeterogeneousCluster,
    cluster_to_dict,
    make_cluster,
)


def mixed(a100=2, l4=4) -> HeterogeneousCluster:
    return HeterogeneousCluster(groups=(
        DeviceGroup("a100", make_cluster("A100-40GB", 1, a100)),
        DeviceGroup("l4", make_cluster("L4", 2, l4)),
    ))


class TestConstruction:
    def test_empty_delta_rejected(self):
        with pytest.raises(DeltaError, match="at least one"):
            ClusterDelta(ops=())

    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError, match="unknown delta op"):
            ClusterDelta(ops=({"op": "teleport"},))

    def test_add_combines_in_order(self):
        delta = (ClusterDelta.remove_nodes(1, group="l4")
                 + ClusterDelta.degrade_link(0.5, link="inter_group"))
        assert [op["op"] for op in delta.ops] \
            == ["remove_nodes", "degrade_link"]

    def test_add_rejects_non_delta(self):
        with pytest.raises(TypeError):
            ClusterDelta.remove_nodes(1) + {"op": "add_nodes"}


class TestSerialization:
    def test_round_trip(self):
        delta = (ClusterDelta.resize_group("l4", gpus_per_node=2)
                 + ClusterDelta.retype_group("a100", "L4"))
        again = ClusterDelta.from_json(delta.to_json())
        assert again == delta
        assert again.fingerprint() == delta.fingerprint()

    def test_fingerprint_distinguishes(self):
        a = ClusterDelta.degrade_link(0.5)
        b = ClusterDelta.degrade_link(0.25)
        assert a.fingerprint() != b.fingerprint()

    def test_from_dict_validates_shape(self):
        with pytest.raises(DeltaError, match="ops"):
            ClusterDelta.from_dict({"operations": []})
        with pytest.raises(DeltaError, match="list"):
            ClusterDelta.from_dict({"ops": {"op": "add_nodes"}})

    def test_describe(self):
        delta = (ClusterDelta.remove_nodes(1, group="l4")
                 + ClusterDelta.resize_group("l4", gpus_per_node=2)
                 + ClusterDelta.degrade_link(0.5))
        assert delta.describe() == "-1node@l4,resize@l4=2,inter_nodex0.5"


class TestApply:
    def test_add_and_remove_nodes_hetero(self):
        cluster = mixed()
        grown = ClusterDelta.add_nodes(2, group="l4").apply(cluster)
        assert grown.group_named("l4").num_nodes == 4
        shrunk = ClusterDelta.remove_nodes(1, group="l4").apply(cluster)
        assert shrunk.group_named("l4").num_nodes == 1
        # the untouched group is unchanged either way
        assert grown.group_named("a100") == cluster.group_named("a100")

    def test_homogeneous_round_trips_kind(self):
        cluster = make_cluster("L4", 2, 4)
        out = ClusterDelta.remove_nodes(1).apply(cluster)
        assert not isinstance(out, HeterogeneousCluster)
        assert out.num_nodes == 1 and out.gpus_per_node == 4

    def test_dict_in_dict_out(self):
        data = cluster_to_dict(mixed())
        out = ClusterDelta.resize_group("l4", gpus_per_node=2).apply(data)
        assert isinstance(out, dict)
        # the input dict is never mutated
        assert data != out

    def test_retype_group(self):
        out = ClusterDelta.retype_group("a100", "L4").apply(mixed())
        assert out.group_named("a100").gpu.name == "L4"

    def test_remove_group_collapses_to_plain_cluster(self):
        # one surviving group == a homogeneous cluster (the same
        # reduction MistTuner applies to single-group fleets)
        out = ClusterDelta.remove_group("a100").apply(mixed())
        assert not isinstance(out, HeterogeneousCluster)
        assert out.gpu.name == "L4" and out.total_gpus == 8

    def test_degrade_inter_group_link(self):
        cluster = mixed()
        out = ClusterDelta.degrade_link(
            0.5, link="inter_group").apply(cluster)
        assert out.inter_group_bandwidth \
            == pytest.approx(cluster.inter_group_bandwidth * 0.5)

    def test_degrade_inter_node_link(self):
        cluster = make_cluster("L4", 2, 4)
        out = ClusterDelta.degrade_link(0.5).apply(cluster)
        assert out.inter_node_bandwidth \
            == pytest.approx(cluster.inter_node_bandwidth * 0.5)


class TestApplyErrors:
    def test_remove_all_nodes(self):
        with pytest.raises(DeltaError, match="leaves group"):
            ClusterDelta.remove_nodes(2, group="a100").apply(mixed())

    def test_remove_last_group(self):
        single = HeterogeneousCluster(
            groups=(DeviceGroup("only", make_cluster("L4", 1, 4)),))
        with pytest.raises(DeltaError):
            ClusterDelta.remove_group("only").apply(single)

    def test_unknown_group(self):
        with pytest.raises(DeltaError, match="unknown device group"):
            ClusterDelta.add_nodes(1, group="h100").apply(mixed())

    def test_group_required_when_ambiguous(self):
        with pytest.raises(DeltaError, match="needs a 'group'"):
            ClusterDelta.add_nodes(1).apply(mixed())

    def test_group_on_homogeneous_rejected(self):
        with pytest.raises(DeltaError, match="no group"):
            ClusterDelta.add_nodes(1, group="l4").apply(
                make_cluster("L4", 1, 4))

    def test_inter_group_on_homogeneous_rejected(self):
        with pytest.raises(DeltaError, match="homogeneous"):
            ClusterDelta.degrade_link(0.5, link="inter_group").apply(
                make_cluster("L4", 1, 4))

    def test_nonpositive_factor_and_count(self):
        with pytest.raises(DeltaError, match="factor"):
            ClusterDelta.degrade_link(0.0).apply(make_cluster("L4", 2, 4))
        with pytest.raises(DeltaError, match="positive 'count'"):
            ClusterDelta(ops=({"op": "add_nodes", "count": 0},)).apply(
                make_cluster("L4", 1, 4))
