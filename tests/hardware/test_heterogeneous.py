"""Heterogeneous-cluster model: construction, serialization, fallbacks."""

import pytest

from repro.hardware import (
    DeviceGroup,
    HeterogeneousCluster,
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    make_cluster,
)


def mixed(a100=2, l4=2) -> HeterogeneousCluster:
    return HeterogeneousCluster(groups=(
        DeviceGroup("a100", make_cluster("A100-40GB", 1, a100)),
        DeviceGroup("l4", make_cluster("L4", 1, l4)),
    ))


class TestConstruction:
    def test_totals_and_names(self):
        h = mixed(4, 2)
        assert h.total_gpus == 6
        assert h.group_names == ("a100", "l4")
        assert h.name == "4xA100-40GB+2xL4"
        assert not h.is_homogeneous

    def test_duplicate_group_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HeterogeneousCluster(groups=(
                DeviceGroup("g", make_cluster("L4", 1, 2)),
                DeviceGroup("g", make_cluster("T4", 1, 2)),
            ))

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousCluster(groups=())

    def test_group_needs_name(self):
        with pytest.raises(ValueError):
            DeviceGroup("", make_cluster("L4", 1, 2))

    def test_group_lookup(self):
        h = mixed()
        assert h.group_named("l4").gpu.name == "L4"
        with pytest.raises(KeyError, match="unknown device group"):
            h.group_named("h100")

    def test_group_for_stage_empty_tag(self):
        h = mixed()
        with pytest.raises(KeyError, match="no device_group"):
            h.group_for_stage("")
        single = HeterogeneousCluster(
            groups=(DeviceGroup("only", make_cluster("L4", 1, 4)),))
        assert single.group_for_stage("").name == "only"


class TestWorstCaseFallback:
    def test_worst_gpu_is_min_memory(self):
        assert mixed().worst_gpu().name == "L4"

    def test_fallback_shape_and_network(self):
        h = mixed(4, 2)
        fb = h.fallback_homogeneous()
        assert fb.total_gpus == h.total_gpus
        assert fb.gpu.name == "L4"
        # slowest link wins: L4 net (100 Gbps) == inter-group link
        assert fb.inter_node_bandwidth == min(
            g.cluster.inter_node_bandwidth for g in h.groups)

    def test_fallback_indivisible_total_degrades_to_one_per_node(self):
        h = HeterogeneousCluster(groups=(
            DeviceGroup("a", make_cluster("A100-40GB", 1, 3)),
            DeviceGroup("b", make_cluster("L4", 1, 2)),
        ))
        fb = h.fallback_homogeneous()
        assert fb.total_gpus == 5
        assert fb.gpus_per_node == 1


class TestSerialization:
    def test_round_trip(self):
        h = mixed()
        assert cluster_from_dict(cluster_to_dict(h)) == h

    def test_homogeneous_round_trip(self):
        spec = make_cluster("A100-80GB", 2, 8)
        assert cluster_from_dict(cluster_to_dict(spec)) == spec

    def test_flat_dict_parses_to_cluster_spec(self):
        spec = cluster_from_dict(
            {"gpu": "L4", "num_nodes": 1, "gpus_per_node": 4})
        assert spec == make_cluster("L4", 1, 4)

    def test_single_group_reduces_to_homogeneous(self):
        parsed = cluster_from_dict({"groups": [
            {"name": "only", "gpu": "L4", "num_nodes": 1,
             "gpus_per_node": 4},
        ]})
        assert parsed == make_cluster("L4", 1, 4)

    def test_gbps_and_us_convenience_keys(self):
        parsed = cluster_from_dict({"groups": [
            {"name": "a", "gpu": "A100-40GB", "gpus_per_node": 2,
             "inter_node_bandwidth_gbps": 200},
            {"name": "b", "gpu": "L4", "gpus_per_node": 2},
        ], "inter_group_bandwidth_gbps": 80, "inter_group_latency_us": 30})
        assert parsed.groups[0].cluster.inter_node_bandwidth == 200e9 / 8
        assert parsed.inter_group_bandwidth == 80e9 / 8
        assert parsed.inter_group_latency == pytest.approx(30e-6)

    def test_conflicting_bandwidth_keys_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            cluster_from_dict({"gpu": "L4", "gpus_per_node": 2,
                               "inter_node_bandwidth": 1e9,
                               "inter_node_bandwidth_gbps": 8})

    def test_conflicting_latency_keys_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            cluster_from_dict({"gpu": "L4", "gpus_per_node": 2,
                               "inter_node_latency": 1e-3,
                               "inter_node_latency_us": 25})

    def test_unknown_gpu_rejected(self):
        with pytest.raises(KeyError):
            cluster_from_dict({"gpu": "TPU-v9", "gpus_per_node": 4})

    def test_non_dict_description_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            cluster_from_dict([1, 2])
        with pytest.raises(ValueError, match="list of group"):
            cluster_from_dict({"groups": "l4"})
        with pytest.raises(ValueError, match="group must be"):
            cluster_from_dict({"groups": ["l4"]})

    def test_load_cluster_reads_example_file(self):
        from pathlib import Path

        path = (Path(__file__).resolve().parents[2]
                / "examples" / "mixed_a100_l4.json")
        h = load_cluster(path)
        assert isinstance(h, HeterogeneousCluster)
        assert h.total_gpus == 8
        assert {g.gpu.name for g in h.groups} == {"A100-40GB", "L4"}
