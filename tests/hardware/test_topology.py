"""Tests for GPU specs and cluster topology."""

import pytest

from repro.hardware import GPU_REGISTRY, GiB, get_gpu, make_cluster


class TestGPUSpecs:
    def test_l4_matches_table3(self):
        l4 = get_gpu("L4")
        assert l4.memory_bytes == 24 * GiB
        assert not l4.has_nvlink

    def test_a100_matches_table3(self):
        a100 = get_gpu("A100-40GB")
        assert a100.memory_bytes == 40 * GiB
        assert a100.has_nvlink

    def test_lookup_case_insensitive(self):
        assert get_gpu("l4") is GPU_REGISTRY["L4"]

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError):
            get_gpu("V100")

    def test_usable_memory_below_physical(self):
        for spec in GPU_REGISTRY.values():
            assert spec.usable_memory_bytes < spec.memory_bytes

    def test_nvlink_beats_pcie_for_gpu_gpu(self):
        assert (
            get_gpu("A100-40GB").gpu_gpu_bandwidth
            > get_gpu("L4").gpu_gpu_bandwidth
        )


class TestClusterSpec:
    def test_total_gpus(self):
        cluster = make_cluster("L4", 4, 8)
        assert cluster.total_gpus == 32

    def test_intra_node_group(self):
        cluster = make_cluster("A100-40GB", 2, 8)
        group = cluster.group(8)
        assert group.intra_node
        assert group.bus_bandwidth == cluster.gpu.gpu_gpu_bandwidth

    def test_cross_node_group_bottlenecked_by_network(self):
        cluster = make_cluster("L4", 4, 8)
        group = cluster.group(32)
        assert group.nodes_spanned == 4
        assert group.bus_bandwidth < cluster.gpu.gpu_gpu_bandwidth
        # 8 ranks share one 100 Gbps NIC
        assert group.bus_bandwidth == pytest.approx(100e9 / 8 / 8)

    def test_group_too_large_raises(self):
        cluster = make_cluster("L4", 1, 8)
        with pytest.raises(ValueError):
            cluster.group(16)

    def test_dp_group_with_tp_crossing_nodes(self):
        cluster = make_cluster("L4", 4, 8)
        # tp=8 fills a node; dp=4 ranks are one per node. Even with a
        # whole NIC per rank, traffic still squeezes through the GPU's
        # PCIe link, so the slower of the two governs.
        group = cluster.dp_group(4, 8)
        assert group.nodes_spanned == 4
        expected = min(cluster.gpu.gpu_gpu_bandwidth, 100e9 / 8)
        assert group.bus_bandwidth == pytest.approx(expected)

    def test_dp_group_trivial(self):
        cluster = make_cluster("L4", 1, 8)
        assert cluster.dp_group(1, 8).size == 1

    def test_stage_parallelism_options(self):
        cluster = make_cluster("L4", 1, 8)
        options = cluster.stage_parallelism_options(8)
        assert (8, 1) in options and (1, 8) in options and (2, 4) in options
        # tp never exceeds node size
        cluster2 = make_cluster("L4", 2, 4)
        options2 = cluster2.stage_parallelism_options(8)
        assert all(tp <= 4 for _, tp in options2)

    def test_pipeline_stage_counts(self):
        cluster = make_cluster("L4", 2, 8)
        assert cluster.pipeline_stage_counts() == [1, 2, 4, 8, 16]

    def test_p2p_bandwidth_intra_vs_inter(self):
        cluster = make_cluster("A100-40GB", 4, 8)
        assert cluster.p2p_bandwidth(4) == cluster.gpu.gpu_gpu_bandwidth
        assert cluster.p2p_bandwidth(8) == cluster.inter_node_bandwidth

    def test_invalid_cluster_raises(self):
        with pytest.raises(ValueError):
            make_cluster("L4", 0, 8)
