"""Load harness: trace determinism, the runner, gates, and the CLI.

The runner tests drive a real in-thread daemon through the stub
solvers registered by ``tests/service/conftest.py`` (this module
borrows them by registering its own equivalents), so a closed-loop run
finishes in milliseconds while still crossing real sockets.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import PlanCache, SolveReport, TuningJob, register_solver
from repro.cli import main
from repro.loadgen import (
    LOAD_SCHEMA,
    TRACE_SCALES,
    TraceSpec,
    check_against_baseline,
    format_load,
    main_check,
    run_load,
    synthesize_trace,
    validate_load,
)
from repro.service import running_service


@register_solver("loadgen-stub", overwrite=True)
class _InstantSolver:
    """Microsecond solve; plan-less deterministic report."""

    def solve(self, job, *, progress=None, should_stop=None):
        return SolveReport(
            solver="loadgen-stub", job=job,
            measured={"throughput": 5.0, "iteration_time": 0.2},
            tuning_time_seconds=0.001, configurations_evaluated=1,
        )


class TestTraceSpec:
    def test_scales_are_wired(self):
        assert set(TRACE_SCALES) == {"smoke", "quick", "synthetic",
                                     "soak"}
        for name, spec in TRACE_SCALES.items():
            assert spec.name == name
            assert spec.requests >= spec.unique_jobs

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(name="bad", requests=0, unique_jobs=1)
        with pytest.raises(ValueError):
            TraceSpec(name="bad", requests=4, unique_jobs=5)
        with pytest.raises(ValueError):
            TraceSpec(name="bad", requests=4, unique_jobs=2,
                      arrival_rate=0.0)

    def test_job_for_cell_feeds_fingerprint(self):
        spec = TRACE_SCALES["smoke"]
        jobs = [spec.job_for_cell(cell) for cell in range(3)]
        prints = {job.fingerprint() for job in jobs}
        assert len(prints) == 3
        assert spec.job_for_cell(1).fingerprint() in prints

    def test_synthetic_scale_arms_the_synthetic_solver(self):
        spec = TRACE_SCALES["synthetic"]
        job = spec.job_for_cell(0)
        assert spec.solver == "synthetic"
        assert job.options["synthetic"]["seconds"] == pytest.approx(0.25)


class TestSynthesizeTrace:
    def test_deterministic(self):
        spec = TRACE_SCALES["smoke"]
        assert synthesize_trace(spec) == synthesize_trace(spec)

    def test_seed_changes_the_trace(self):
        spec = TRACE_SCALES["smoke"]
        other = dataclasses.replace(spec, seed=7)
        assert synthesize_trace(spec) != synthesize_trace(other)

    def test_cold_sweep_then_revisits(self):
        spec = TraceSpec(name="t", requests=10, unique_jobs=4)
        trace = synthesize_trace(spec)
        assert len(trace) == 10
        assert [r.cell for r in trace[:4]] == [0, 1, 2, 3]
        assert all(0 <= r.cell < 4 for r in trace[4:])

    def test_offsets_strictly_increase(self):
        trace = synthesize_trace(TRACE_SCALES["smoke"])
        offsets = [r.offset for r in trace]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0.0


class TestRunLoad:
    SPEC = TraceSpec(name="unit", requests=10, unique_jobs=3,
                     solver="loadgen-stub", arrival_rate=200.0)

    def _run(self, tmp_path, **kwargs):
        trace = synthesize_trace(self.SPEC)
        with running_service(workers=2,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, _):
            url = f"http://{service.host}:{service.port}"
            return run_load(url, self.SPEC, trace, **kwargs)

    def test_closed_loop_all_ok(self, tmp_path):
        result = self._run(tmp_path, mode="closed", concurrency=3,
                           timeout=30.0)
        assert result["schema"] == LOAD_SCHEMA
        requests = result["requests"]
        assert requests["total"] == 10
        assert requests["ok"] == 10
        # 3 unique cells over 10 requests: 7 answers were reused
        assert requests["from_cache"] + requests["coalesced"] == 7
        assert result["latency_seconds"]["p99"] > 0.0
        assert result["throughput_rps"] > 0.0
        assert validate_load(result) == []
        assert result["server"]["metrics"]["jobs"]["submitted"] == 10

    def test_open_loop_all_ok(self, tmp_path):
        result = self._run(tmp_path, mode="open", timeout=30.0)
        assert result["requests"]["ok"] == 10
        assert validate_load(result) == []

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown load mode"):
            self._run(tmp_path, mode="sideways")

    def test_rejections_are_counted_not_fatal(self, tmp_path):
        # quota 1 + a 10-deep trace from one client id: most requests
        # bounce with 429, which the gates treat as expected behavior
        trace = synthesize_trace(self.SPEC)
        with running_service(workers=2, quota=1,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, _):
            url = f"http://{service.host}:{service.port}"
            result = run_load(url, self.SPEC, trace, mode="closed",
                              concurrency=4, timeout=30.0)
        requests = result["requests"]
        assert requests["ok"] >= 1
        assert requests["ok"] + requests["rejected"] == 10
        assert requests["server_errors"] == 0
        for outcome in result["outcomes"]:
            if outcome["status"] == "rejected":
                assert outcome["http_status"] == 429
                assert outcome["retry_after"] >= 1


class TestGates:
    def _ok_report(self) -> dict:
        return {
            "schema": LOAD_SCHEMA, "scale": "smoke", "mode": "closed",
            "requests": {"total": 4, "ok": 4, "rejected": 0, "failed": 0,
                         "timeout": 0, "client_errors": 0,
                         "server_errors": 0, "transport_errors": 0,
                         "from_cache": 1, "coalesced": 1},
            "latency_seconds": {"p50": 0.1, "p95": 0.2, "p99": 0.3,
                                "max": 0.3, "mean": 0.15},
            "throughput_rps": 10.0, "wall_seconds": 0.4,
            "plan_hash_conflicts": [],
        }

    def test_validate_accepts_clean_run(self):
        assert validate_load(self._ok_report()) == []

    def test_validate_flags_schema_and_errors(self):
        assert "schema" in validate_load({"schema": "bench/1"})[0]
        bad = self._ok_report()
        bad["requests"]["server_errors"] = 2
        bad["requests"]["ok"] = 0
        problems = validate_load(bad)
        assert any("5xx" in p for p in problems)
        assert any("no request completed" in p for p in problems)

    def test_validate_flags_plan_hash_divergence(self):
        bad = self._ok_report()
        bad["plan_hash_conflicts"] = [
            {"cell": 3, "expected": "aaa", "got": "bbb"}]
        assert any("diverged" in p for p in validate_load(bad))

    def test_baseline_gate_needs_both_thresholds(self):
        base = self._ok_report()
        fast = self._ok_report()
        # +200% relative but only +0.6s... exceeds min_abs -> flagged
        slow = self._ok_report()
        slow["latency_seconds"]["p99"] = 0.9
        assert check_against_baseline(slow, base) != []
        # large relative, tiny absolute -> scheduler noise, not flagged
        tiny_base = self._ok_report()
        tiny_base["latency_seconds"]["p99"] = 0.01
        tiny_cur = self._ok_report()
        tiny_cur["latency_seconds"]["p99"] = 0.05
        assert check_against_baseline(tiny_cur, tiny_base) == []
        assert check_against_baseline(fast, base) == []

    def test_baseline_gate_rejects_mismatched_runs(self):
        base = self._ok_report()
        other = self._ok_report()
        other["scale"] = "soak"
        assert any("scale" in p
                   for p in check_against_baseline(other, base))
        alien = {"schema": "repro-bench/1"}
        assert any("schema" in p
                   for p in check_against_baseline(self._ok_report(),
                                                   alien))

    def test_format_and_main_check(self, capsys):
        report = self._ok_report()
        text = format_load(report)
        assert "4/4 ok" in text
        assert main_check(report, None) == 0
        assert "load gates: OK" in capsys.readouterr().out
        report["requests"]["failed"] = 1
        assert main_check(report, None) == 1
        assert "FAIL" in capsys.readouterr().out


class TestLoadCli:
    def test_needs_a_target(self, capsys):
        assert main(["load", "--scale", "smoke"]) == 2
        assert "--url" in capsys.readouterr().err

    def test_against_live_url(self, tmp_path, capsys):
        out = tmp_path / "LOAD.json"
        with running_service(workers=2,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, _):
            url = f"http://{service.host}:{service.port}"
            code = main(["load", "--scale", "smoke", "--url", url,
                         "--requests", "6", "--unique-jobs", "2",
                         "--out", str(out)])
        assert code == 0
        assert "load gates: OK" in capsys.readouterr().out
        written = json.loads(out.read_text())
        assert written["schema"] == LOAD_SCHEMA
        assert written["requests"]["ok"] == 6

    def test_baseline_gate_wired_through(self, tmp_path, capsys):
        out = tmp_path / "LOAD.json"
        baseline = tmp_path / "BASE.json"

        def run(tag, extra=()):
            # fresh service + cache per invocation so every cell is
            # cold: synthetic-scale cells busy-spin >= 0.25s, which
            # always trips a ~zero doctored baseline p99 on both the
            # relative and the absolute (0.25s) regression thresholds
            with running_service(workers=2,
                                 cache=PlanCache(tmp_path / tag)
                                 ) as (service, _):
                url = f"http://{service.host}:{service.port}"
                return main(["load", "--scale", "synthetic",
                             "--url", url, "--requests", "4",
                             "--unique-jobs", "2", "--out", str(out),
                             *extra])

        assert run("first") == 0
        out.replace(baseline)
        doctored = json.loads(baseline.read_text())
        doctored["latency_seconds"]["p99"] = 1e-9
        baseline.write_text(json.dumps(doctored))
        code = run("second", ["--baseline", str(baseline),
                              "--max-regression", "0.0"])
        assert code == 1
        assert "p99 latency regressed" in capsys.readouterr().out
