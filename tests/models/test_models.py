"""Tests for model configs, registry, and symbolic layer graphs."""

import pytest

from repro.models import (
    LayerGraph,
    ModelConfig,
    build_post_layer,
    build_pre_layer,
    build_transformer_layer,
    get_model,
    list_models,
    trace_model,
)
from repro.symbolic import evaluate


class TestRegistry:
    @pytest.mark.parametrize(
        "spec,expected_billions",
        [
            ("gpt3-1.3b", 1.3), ("gpt3-2.7b", 2.7), ("gpt3-6.7b", 6.7),
            ("gpt3-13b", 13.0), ("gpt3-22b", 22.0),
            ("llama-6.7b", 6.7), ("falcon-6.7b", 6.7),
        ],
    )
    def test_param_counts_match_names(self, spec, expected_billions):
        model = get_model(spec)
        billions = model.total_params / 1e9
        assert billions == pytest.approx(expected_billions, rel=0.12)

    def test_list_models_all_resolvable(self):
        for spec in list_models():
            assert get_model(spec).total_params > 0

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            get_model("bert-1.3b")
        with pytest.raises(KeyError):
            get_model("gpt3-123b")

    def test_gpt_alias_7b(self):
        assert get_model("gpt3-7b").hidden_size == get_model("gpt3-6.7b").hidden_size

    def test_family_features(self):
        assert get_model("llama-6.7b").gated_mlp
        assert get_model("llama-6.7b").rmsnorm
        assert get_model("falcon-6.7b").parallel_attn
        assert not get_model("gpt3-6.7b").rotary

    def test_falcon_single_allreduce(self):
        assert get_model("falcon-6.7b").tp_allreduces_per_layer == 1
        assert get_model("gpt3-6.7b").tp_allreduces_per_layer == 2

    def test_with_layers_clone(self):
        base = get_model("gpt3-22b")
        deeper = base.with_layers(80)
        assert deeper.num_layers == 80
        assert deeper.hidden_size == base.hidden_size


class TestModelConfigValidation:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            ModelConfig(name="x", family="gpt3", hidden_size=100,
                        num_layers=2, num_heads=3, vocab_size=1000,
                        ffn_hidden_size=400)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            ModelConfig(name="x", family="rnn", hidden_size=64,
                        num_layers=2, num_heads=2, vocab_size=100,
                        ffn_hidden_size=256)


ENV = {"b": 4, "s": 2048, "tp": 1}


class TestLayerGraphs:
    @pytest.mark.parametrize("spec", ["gpt3-2.7b", "llama-2.7b", "falcon-2.7b"])
    @pytest.mark.parametrize("flash", [True, False])
    def test_build_all_families(self, spec, flash):
        layer = build_transformer_layer(get_model(spec), flash=flash)
        assert isinstance(layer, LayerGraph)
        assert evaluate(layer.fwd_flops(), ENV) > 0

    def test_saved_activations_match_literature(self):
        """GPT block (no flash) saves bsh(8 + 24/tp) + 2·b·a·s²/tp bytes,
        within ~10% of the published 34·bsh + 2·b·a·s² (dropout disabled)."""
        model = get_model("gpt3-2.7b")
        layer = build_transformer_layer(model, flash=False)
        b, s, h, a = 4, 2048, model.hidden_size, model.num_heads
        for tp in (1, 2, 4):
            measured = evaluate(layer.saved_activation_bytes(),
                                {"b": b, "s": s, "tp": tp})
            expected = b * s * h * (8 + 24 / tp) + 2 * b * a * s * s / tp
            assert measured == pytest.approx(expected, rel=0.02)
        at_tp1 = evaluate(layer.saved_activation_bytes(),
                          {"b": b, "s": s, "tp": 1})
        literature = 34 * b * s * h + 2 * b * a * s * s
        assert at_tp1 == pytest.approx(literature, rel=0.10)

    def test_flash_removes_quadratic_term(self):
        model = get_model("gpt3-2.7b")
        noflash = build_transformer_layer(model, flash=False)
        flash = build_transformer_layer(model, flash=True)
        saved_noflash = evaluate(noflash.saved_activation_bytes(), ENV)
        saved_flash = evaluate(flash.saved_activation_bytes(), ENV)
        assert saved_flash < 0.6 * saved_noflash

    def test_flops_scale_inverse_with_tp(self):
        layer = build_transformer_layer(get_model("gpt3-6.7b"), flash=True)
        f1 = evaluate(layer.fwd_flops(), {"b": 4, "s": 2048, "tp": 1})
        f4 = evaluate(layer.fwd_flops(), {"b": 4, "s": 2048, "tp": 4})
        # the sharded GEMMs dominate; norm/residual work is replicated
        assert f4 == pytest.approx(f1 / 4, rel=0.05)

    def test_bwd_flops_roughly_twice_fwd(self):
        layer = build_transformer_layer(get_model("gpt3-6.7b"), flash=False)
        fwd = evaluate(layer.fwd_flops(), ENV)
        bwd = evaluate(layer.bwd_flops(), ENV)
        assert 1.8 <= bwd / fwd <= 2.2

    def test_gpt_layer_flops_formula(self):
        """fwd flops per layer ≈ 24·b·s·h² + 4·b·s²·h (GEMM terms)."""
        model = get_model("gpt3-6.7b")
        layer = build_transformer_layer(model, flash=False)
        b, s, h = 4, 2048, model.hidden_size
        measured = evaluate(layer.fwd_flops(), ENV)
        expected = 24 * b * s * h * h + 4 * b * s * s * h
        assert measured == pytest.approx(expected, rel=0.05)

    def test_tp_comm_volume(self):
        model = get_model("gpt3-2.7b")
        layer = build_transformer_layer(model, flash=True)
        bytes_fwd = evaluate(layer.tp_allreduce_fwd_bytes(), ENV)
        # two all-reduces of b·s·h fp16 elements
        assert bytes_fwd == 2 * (2 * 4 * 2048 * model.hidden_size)

    def test_falcon_tp_comm_half_of_gpt(self):
        gpt = build_transformer_layer(get_model("gpt3-2.7b"), flash=True)
        falcon = build_transformer_layer(get_model("falcon-2.7b"), flash=True)
        assert (
            evaluate(falcon.tp_allreduce_fwd_bytes(), ENV)
            == evaluate(gpt.tp_allreduce_fwd_bytes(), ENV) / 2
        )

    def test_ckpt_saved_is_layer_input(self):
        model = get_model("gpt3-2.7b")
        layer = build_transformer_layer(model, flash=True)
        assert (
            evaluate(layer.ckpt_saved_bytes(), ENV)
            == 2 * 4 * 2048 * model.hidden_size
        )

    def test_undefined_tensor_rejected(self):
        from repro.models.ops import Op, OpKind
        from repro.symbolic import Const

        with pytest.raises(ValueError, match="undefined"):
            LayerGraph(
                name="bad",
                ops=[Op(name="op", kind=OpKind.ELEMENTWISE,
                        inputs=("ghost",), output="y",
                        output_bytes=Const(4))],
                input_tensor="x", input_bytes=Const(4),
            )


class TestPrePostLayers:
    def test_pre_layer_params(self):
        model = get_model("gpt3-2.7b")
        pre = build_pre_layer(model)
        count = evaluate(pre.param_count, {"tp": 1})
        assert count == model.embedding_params

    def test_post_layer_logits_dominate_memory(self):
        model = get_model("gpt3-2.7b")
        post = build_post_layer(model)
        saved = evaluate(post.saved_activation_bytes(), ENV)
        logits = 2 * 4 * 2048 * model.vocab_size
        assert saved > logits  # logits plus norm/head stashes

    def test_trace_model_bundles_all_parts(self):
        graph = trace_model(get_model("gpt3-1.3b"), flash=True)
        assert graph.pre.name == "pre_layer"
        assert graph.post.name == "post_layer"
        assert evaluate(graph.boundary_activation_bytes, ENV) == 2 * 4 * 2048 * 2048
