"""Shared fixtures for the tuning-service tests.

Tests drive the real daemon (asyncio HTTP server + worker pool) over
real sockets, but through *stub solvers* registered in the process-wide
registry — a solve takes microseconds unless a test deliberately blocks
it, so the whole suite stays fast.

Fixtures: ``service`` (a started daemon on an ephemeral port),
``client`` (blocking client bound to it), ``job`` (a small canonical
job), and ``stub`` / ``slow`` (state handles for the ``svc-stub`` /
``svc-slow`` registry entries; ``slow`` blocks until released and polls
the cancellation hook).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import PlanCache, SolveReport, TuningJob, register_solver
from repro.core.tuner import SearchCancelled
from repro.service import running_service

_JOB = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=2, global_batch=16,
                 scale="smoke", interference="none")


class StubState:
    """Controllable behavior + counters for one registered stub solver."""

    def __init__(self):
        self.lock = threading.Lock()
        self.invocations = 0
        #: set by the solver when it starts running
        self.started = threading.Event()
        #: solver blocks until this is set (when block=True)
        self.release = threading.Event()
        self.block = False
        self.fail_with: Exception | None = None

    def reset(self, *, block: bool = False):
        self.__init__()
        self.block = block


def _make_stub(name: str, state: StubState) -> StubState:
    @register_solver(name, overwrite=True)
    class _Stub:  # noqa: F841 — registered for its side effect
        def solve(self, job, *, progress=None, should_stop=None):
            with state.lock:
                state.invocations += 1
            state.started.set()
            if progress is not None:
                progress(1, 2)
            if state.block:
                while not state.release.wait(timeout=0.02):
                    if should_stop is not None and should_stop():
                        raise SearchCancelled("stub cancelled")
            if state.fail_with is not None:
                raise state.fail_with
            if progress is not None:
                progress(2, 2)
            return SolveReport(
                solver=name, job=job,
                measured={"throughput": 7.5, "iteration_time": 0.2},
                tuning_time_seconds=0.01, configurations_evaluated=4,
                search_stats={"cells_total": 4, "cells_explored": 2,
                              "cells_pruned": 2, "configs_evaluated": 4,
                              "configs_prefiltered": 6, "memo_hits": 1,
                              "memo_misses": 3},
            )

    return state


_STUB = _make_stub("svc-stub", StubState())
_SLOW = _make_stub("svc-slow", StubState())


@pytest.fixture()
def job() -> TuningJob:
    return _JOB


@pytest.fixture()
def stub() -> StubState:
    _STUB.reset()
    yield _STUB


@pytest.fixture()
def slow() -> StubState:
    _SLOW.reset(block=True)
    yield _SLOW
    # never leave a blocked solver holding a worker thread
    _SLOW.release.set()


@pytest.fixture()
def _running(tmp_path):
    with running_service(workers=2,
                         cache=PlanCache(tmp_path / "plans")) as pair:
        yield pair


@pytest.fixture()
def service(_running):
    return _running[0]


@pytest.fixture()
def client(_running):
    return _running[1]
