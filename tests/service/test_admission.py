"""Admission control: bounded queue, per-client quotas, 429 semantics.

All tests run the thread tier with the blocking ``svc-slow`` stub so
queue depth is under test control; the HTTP surface (status code,
``Retry-After`` header, body fields) is exercised through the real
client, which folds them into :class:`ServiceError`.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import PlanCache
from repro.service import AdmissionError, Client, running_service
from repro.service.state import percentiles


def _distinct(job, tag):
    return dataclasses.replace(job, options={"cell": tag})


class TestQueueBound:
    def test_full_queue_rejects_with_429_and_retry_after(
            self, job, slow, tmp_path):
        with running_service(workers=2, max_pending=1,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            first = client.submit(_distinct(job, 1), solver="svc-slow")
            assert slow.started.wait(timeout=5)

            with pytest.raises(Exception) as excinfo:
                client.submit(_distinct(job, 2), solver="svc-slow")
            err = excinfo.value
            assert getattr(err, "status", None) == 429
            assert err.retry_after >= 1
            assert "queue is full" in str(err)

            metrics = client.metrics()
            assert metrics["admission"]["rejected_queue"] == 1
            assert metrics["admission"]["max_pending"] == 1
            assert metrics["admission"]["queue_depth"] == 1

            # rejected submissions never count as submitted work
            assert metrics["jobs"]["submitted"] == 1

            slow.release.set()
            client.wait(first["id"], timeout=10)
            # the queue drained: the same second job is admitted now
            accepted = client.submit(_distinct(job, 2), solver="svc-slow")
            client.wait(accepted["id"], timeout=10)

    def test_coalescing_bypasses_queue_bound(self, job, slow, tmp_path):
        with running_service(workers=2, max_pending=1,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            first = client.submit(job, solver="svc-slow")
            assert slow.started.wait(timeout=5)
            # identical job: attaches to the in-flight search even
            # though the queue is at its bound
            dup = client.submit(job, solver="svc-slow")
            assert dup["coalesced"] is True
            slow.release.set()
            assert client.wait(first["id"], timeout=10)["status"] == "done"
            assert client.wait(dup["id"], timeout=10)["status"] == "done"
            assert slow.invocations == 1

    def test_campaign_batch_admitted_as_one_unit(self, job, slow, tmp_path):
        with running_service(workers=2, max_pending=1,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            cells = [{"solver": "svc-slow",
                      "job": _distinct(job, tag).to_dict()}
                     for tag in (1, 2)]
            with pytest.raises(Exception) as excinfo:
                client.submit_campaign(cells, name="too-big")
            assert getattr(excinfo.value, "status", None) == 429
            assert "campaign" in str(excinfo.value)
            metrics = client.metrics()
            # rejected wholesale: no cell was submitted
            assert metrics["jobs"]["submitted"] == 0
            assert metrics["campaigns"]["submitted"] == 0
            slow.release.set()


class TestClientQuota:
    def test_quota_is_per_client(self, job, slow, tmp_path):
        with running_service(workers=2, quota=1,
                             cache=PlanCache(tmp_path / "plans"),
                             client_id="alice") as (service, alice):
            bob = Client(f"http://{service.host}:{service.port}",
                         timeout=10, client_id="bob")
            first = alice.submit(_distinct(job, 1), solver="svc-slow")
            assert slow.started.wait(timeout=5)

            with pytest.raises(Exception) as excinfo:
                alice.submit(_distinct(job, 2), solver="svc-slow")
            assert getattr(excinfo.value, "status", None) == 429
            assert "quota" in str(excinfo.value)

            # a different client is not throttled by alice's jobs
            other = bob.submit(_distinct(job, 3), solver="svc-slow")

            metrics = alice.metrics()
            assert metrics["admission"]["rejected_quota"] == 1
            assert metrics["admission"]["quota"] == 1

            slow.release.set()
            alice.wait(first["id"], timeout=10)
            bob.wait(other["id"], timeout=10)
            # terminal jobs release their quota slot
            done = alice.submit(_distinct(job, 4), solver="svc-slow")
            alice.wait(done["id"], timeout=10)

    def test_quota_applies_to_coalescing_submissions(
            self, job, slow, tmp_path):
        with running_service(workers=2, quota=1,
                             cache=PlanCache(tmp_path / "plans"),
                             client_id="alice") as (service, alice):
            alice.submit(job, solver="svc-slow")
            assert slow.started.wait(timeout=5)
            # even a would-coalesce duplicate holds a quota slot
            with pytest.raises(Exception) as excinfo:
                alice.submit(job, solver="svc-slow")
            assert getattr(excinfo.value, "status", None) == 429
            slow.release.set()

    def test_cancel_releases_quota(self, job, slow, tmp_path):
        with running_service(workers=2, quota=1,
                             cache=PlanCache(tmp_path / "plans"),
                             client_id="alice") as (service, alice):
            first = alice.submit(_distinct(job, 1), solver="svc-slow")
            assert slow.started.wait(timeout=5)
            alice.cancel(first["id"])
            # the cancelled record gave its slot back immediately
            second = alice.submit(_distinct(job, 2), solver="svc-slow")
            slow.release.set()
            alice.wait(second["id"], timeout=10)


class TestAdmissionApi:
    def test_zero_disables_both_bounds(self, job, stub, tmp_path):
        with running_service(workers=2, max_pending=0, quota=0,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            records = [client.submit(_distinct(job, tag),
                                     solver="svc-stub")
                       for tag in range(6)]
            for record in records:
                client.wait(record["id"], timeout=10)
            metrics = client.metrics()
            assert metrics["admission"]["rejected_queue"] == 0
            assert metrics["admission"]["rejected_quota"] == 0

    def test_negative_bounds_rejected(self):
        from repro.service import TuningService
        with pytest.raises(ValueError):
            TuningService(max_pending=-1)
        with pytest.raises(ValueError):
            TuningService(quota=-1)

    def test_healthz_reports_admission_config(self, job, tmp_path):
        with running_service(workers=2, worker_mode="thread",
                             max_pending=7, quota=3,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            health = client.health()
            assert health["worker_mode"] == "thread"
            assert health["max_pending"] == 7
            assert health["quota"] == 3

    def test_admission_error_directly(self, job, slow, tmp_path):
        with running_service(workers=2, max_pending=1,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            client.submit(_distinct(job, 1), solver="svc-slow")
            assert slow.started.wait(timeout=5)
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(_distinct(job, 2), solver="svc-slow")
            assert excinfo.value.reason == "queue"
            assert excinfo.value.retry_after >= 1
            slow.release.set()


class TestLatencyMetrics:
    def test_percentile_fields_populate(self, job, stub, tmp_path):
        with running_service(workers=2,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            for tag in range(3):
                record = client.submit(_distinct(job, tag),
                                       solver="svc-stub")
                client.wait(record["id"], timeout=10)
            latency = client.metrics()["latency"]
        assert latency["samples"] == 3
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["wait_p50"] <= latency["p50"]

    def test_cache_hits_do_not_skew_latency(self, job, stub, tmp_path):
        with running_service(workers=2,
                             cache=PlanCache(tmp_path / "plans")
                             ) as (service, client):
            record = client.submit(job, solver="svc-stub")
            client.wait(record["id"], timeout=10)
            for _ in range(4):
                hit = client.submit(job, solver="svc-stub")
                assert hit["from_cache"] is True
            assert client.metrics()["latency"]["samples"] == 1


class TestPercentiles:
    def test_empty_is_all_zero(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        spread = percentiles(samples)
        assert spread == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_single_sample(self):
        assert percentiles([2.5]) == {"p50": 2.5, "p95": 2.5, "p99": 2.5}

    def test_unsorted_input(self):
        assert percentiles([3.0, 1.0, 2.0])["p50"] == 2.0

    def test_custom_points(self):
        spread = percentiles([1.0, 2.0, 3.0, 4.0], points=(25.0, 100.0))
        assert spread == {"p25": 1.0, "p100": 4.0}
