"""Tests for the service's POST /campaigns batch surface."""

import pytest

from repro.service import ServiceError, UnknownCampaignError


class TestCampaignEndpoint:
    def test_batch_runs_every_cell(self, client, job, stub):
        record = client.submit_campaign(
            [(job, "svc-stub"), (job.with_(global_batch=8), "svc-stub")],
            name="grid")
        assert record["status"] in ("running", "done")
        final = client.wait_campaign(record["id"], timeout=10)
        assert final["status"] == "done"
        assert final["counters"]["cells"] == 2
        assert final["counters"]["done"] == 2
        assert stub.invocations == 2
        # per-cell records are ordinary job records, fetchable by id
        cell = client.job(final["cells"][0]["id"])
        assert cell["report"]["solver"] == "svc-stub"

    def test_duplicate_cells_coalesce(self, client, job, slow):
        record = client.submit_campaign(
            [(job, "svc-slow"), (job, "svc-slow")], name="coalesce")
        assert slow.started.wait(timeout=5)
        slow.release.set()
        final = client.wait_campaign(record["id"], timeout=10)
        assert final["status"] == "done"
        assert final["counters"]["coalesced"] == 1
        assert slow.invocations == 1
        metrics = client.metrics()
        assert metrics["jobs"]["coalesced"] >= 1

    def test_repeat_campaign_is_pure_cache(self, client, job, stub):
        first = client.submit_campaign([(job, "svc-stub")])
        client.wait_campaign(first["id"], timeout=10)
        again = client.submit_campaign([(job, "svc-stub")])
        final = client.wait_campaign(again["id"], timeout=10)
        assert final["counters"]["from_cache"] == 1
        assert stub.invocations == 1

    def test_campaign_metrics_section(self, client, job, stub):
        before = client.metrics()["campaigns"]
        record = client.submit_campaign(
            [(job, "svc-stub"), (job.with_(global_batch=4), "svc-stub")])
        client.wait_campaign(record["id"], timeout=10)
        after = client.metrics()["campaigns"]
        assert after["submitted"] == before["submitted"] + 1
        assert after["cells"] == before["cells"] + 2
        assert after["tracked"] == before["tracked"] + 1

    def test_unknown_solver_rejects_whole_batch(self, client, job, stub):
        jobs_before = len(client.jobs())
        with pytest.raises(ServiceError) as err:
            client.submit_campaign(
                [(job, "svc-stub"), (job, "no-such-solver")])
        assert err.value.status == 404
        # validation precedes submission: no partial batch left behind
        assert len(client.jobs()) == jobs_before
        assert stub.invocations == 0

    def test_bad_bodies_rejected(self, client, job):
        for payload in ({}, {"cells": []}, {"cells": "nope"},
                        {"cells": [{"solver": "mist"}]},
                        {"cells": [{"job": {"model": "gpt3-1.3b"}}]}):
            with pytest.raises(ServiceError) as err:
                client._request("POST", "/campaigns", payload)
            assert err.value.status == 400, payload

    def test_list_and_lookup(self, client, job, stub):
        record = client.submit_campaign([(job, "svc-stub")], name="lookup")
        client.wait_campaign(record["id"], timeout=10)
        listing = client.campaigns()
        assert any(c["id"] == record["id"] for c in listing)
        # summaries omit the cell list; the detail view carries it
        summary = next(c for c in listing if c["id"] == record["id"])
        assert "cells" not in summary
        assert len(client.campaign(record["id"])["cells"]) == 1

    def test_unknown_campaign_404(self, client, service):
        with pytest.raises(ServiceError) as err:
            client.campaign("camp-missing")
        assert err.value.status == 404
        with pytest.raises(UnknownCampaignError):
            service.get_campaign("camp-missing")

    def test_method_not_allowed(self, client, service):
        with pytest.raises(ServiceError) as err:
            client._request("DELETE", "/campaigns")
        assert err.value.status == 405
