"""Chaos: kill solver worker processes and prove nothing wedges.

Two failure-injection levers:

* a real ``SIGKILL`` on a routed worker pid (tier-level tests — the
  honest "someone OOM-killed my worker" scenario);
* the synthetic solver's ``die_file`` hook (service/campaign tests —
  the worker hard-exits via ``os._exit`` *iff* a flag file exists, so
  death is deterministic and, because the flag is outside the job
  fingerprint, the identical resubmitted job can succeed).

Every test ends by proving the survivor property: the tier/daemon
answers the *next* request, with ``restarts`` ticked in stats.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import threading
import time

import pytest

from repro.api import PlanCache, TuningJob
from repro.campaigns import CampaignSpec, run_campaign
from repro.service import running_service
from repro.service.workers import ProcessWorkerTier, WorkerDiedError

LONG_JOB = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=2,
                     global_batch=16, scale="smoke", interference="none",
                     options={"synthetic": {"seconds": 30.0}})


def _kill_routed_worker(tier: ProcessWorkerTier, job: TuningJob,
                        solver: str = "synthetic",
                        after: float = 0.5) -> int:
    """SIGKILL the worker the job routed to, once it is mid-search."""
    time.sleep(after)
    index = tier.route(solver, job.fingerprint())
    pid = tier.worker_pids()[index]
    assert pid is not None, "worker was never spawned"
    os.kill(pid, signal.SIGKILL)
    return index


class TestTierChaos:
    def test_kill_mid_search_fails_cleanly_without_retry(self):
        tier = ProcessWorkerTier(2, retries=0)
        try:
            tier.warm(timeout=120)
            killer = threading.Thread(
                target=_kill_routed_worker, args=(tier, LONG_JOB))
            killer.start()
            with pytest.raises(WorkerDiedError, match="died mid-search"):
                tier.run(LONG_JOB, "synthetic")
            killer.join()
            assert tier.stats()["restarts"] == 1
            # the queue is not wedged: the next search (same slot or
            # not) respawns lazily and completes
            short = dataclasses.replace(
                LONG_JOB, options={"synthetic": {"seconds": 0.05}})
            report = tier.run(short, "synthetic")
            assert report.measured["throughput"] == 100.0
        finally:
            tier.shutdown()

    def test_kill_mid_search_retries_once_and_succeeds(self):
        job = dataclasses.replace(
            LONG_JOB, options={"synthetic": {"seconds": 2.0}})
        tier = ProcessWorkerTier(2, retries=1)
        try:
            tier.warm(timeout=120)
            killer = threading.Thread(
                target=_kill_routed_worker, args=(tier, job))
            killer.start()
            report = tier.run(job, "synthetic")
            killer.join()
            assert report.measured["throughput"] == 100.0
            assert tier.stats()["restarts"] == 1
        finally:
            tier.shutdown()


class TestServiceChaos:
    def test_worker_death_fails_job_not_daemon(self, tmp_path):
        flag = tmp_path / "die-now"
        flag.touch()
        doomed = dataclasses.replace(
            LONG_JOB,
            options={"synthetic": {"seconds": 0.2,
                                   "die_file": str(flag)}})
        with running_service(workers=2, worker_mode="process",
                             worker_retries=0,
                             cache=PlanCache(tmp_path / "plans"),
                             client_timeout=120.0) as (_, client):
            record = client.submit(doomed, solver="synthetic")
            final = client.wait(record["id"], timeout=120)
            assert final["status"] == "failed"
            assert "WorkerDiedError" in final["error"]

            # daemon is alive, ticked the restart counter, and the
            # *same* job succeeds once the flag is gone
            assert client.health()["status"] == "ok"
            metrics = client.metrics()
            assert metrics["jobs"]["failed"] == 1
            assert metrics["worker_tier"]["restarts"] >= 1
            flag.unlink()
            retry = client.submit(doomed, solver="synthetic")
            assert client.wait(retry["id"],
                               timeout=120)["status"] == "done"

    def test_campaign_worker_death_leaves_manifest_resumable(
            self, tmp_path, monkeypatch):
        flag = tmp_path / "chaos-flag"
        flag.touch()
        # campaign cells carry no free-form options; arm the chaos hook
        # through the synthetic solver's environment defaults instead
        # (worker processes inherit the daemon's environment)
        monkeypatch.setenv(
            "REPRO_SYNTHETIC_DEFAULTS",
            json.dumps({"seconds": 0.1, "die_file": str(flag)}))
        spec = CampaignSpec(name="chaos-campaign", solvers=("synthetic",),
                            models=("gpt3-1.3b",), scales=("smoke",),
                            clusters=({"gpu": "L4", "num_gpus": 2},),
                            global_batches=(8, 16))
        directory = tmp_path / "campaign"
        with running_service(workers=2, worker_mode="process",
                             worker_retries=0,
                             cache=PlanCache(tmp_path / "plans"),
                             client_timeout=120.0) as (service, client):
            url = f"http://{service.host}:{service.port}"
            first = run_campaign(
                spec, executor="service",
                executor_options={"url": url, "timeout": 120.0},
                directory=directory)
            # both cells died with their workers — recorded as failed,
            # the campaign itself finished (nothing wedged)
            assert first.counters["failed"] == 2
            assert first.counters["done"] == 0
            assert client.health()["status"] == "ok"

            flag.unlink()
            resumed = run_campaign(
                spec, executor="service",
                executor_options={"url": url, "timeout": 120.0},
                directory=directory, resume=True)
            assert resumed.counters["failed"] == 0
            assert resumed.counters["done"] == 2

            # third run: pure manifest short-circuit, no daemon work
            again = run_campaign(
                spec, executor="service",
                executor_options={"url": url, "timeout": 120.0},
                directory=directory, resume=True)
            assert again.counters["done"] == 2
            assert again.counters["manifest_hits"] == 2
