"""Coalescing + cache-reuse acceptance tests (the service's raison d'être).

The contract: two concurrent identical ``POST /jobs`` trigger exactly
one solver invocation, and a repeated request after completion is
served from the shared ``PlanCache`` with no re-search — with the
``/metrics`` counters proving both.
"""

from __future__ import annotations

import threading

from repro.api import PlanCache
from repro.service import Client, TuningService


class TestCoalescing:
    def test_concurrent_identical_posts_share_one_search(
            self, client, job, slow):
        records = []

        def post():
            records.append(client.submit(job, solver="svc-slow"))

        threads = [threading.Thread(target=post) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert slow.started.wait(timeout=5)
        # both accepted; exactly one search is in flight
        assert len(records) == 2
        assert sorted(r["coalesced"] for r in records) == [False, True]
        assert slow.invocations == 1

        slow.release.set()
        finals = [client.wait(r["id"], timeout=10) for r in records]
        assert [f["status"] for f in finals] == ["done", "done"]
        # both records carry the same report from the single search
        assert finals[0]["report"] == finals[1]["report"]
        assert slow.invocations == 1

        metrics = client.metrics()
        assert metrics["solver"]["invocations"] == 1
        assert metrics["jobs"]["coalesced"] == 1
        assert metrics["jobs"]["submitted"] == 2
        assert metrics["jobs"]["completed"] == 2

    def test_repeat_after_completion_hits_cache(self, client, job, stub):
        first = client.solve(job, solver="svc-stub", timeout=10)
        assert first.from_cache is False
        repeat = client.submit(job, solver="svc-stub")
        # answered synchronously from the cache: terminal on arrival
        assert repeat["status"] == "done"
        assert repeat["from_cache"] is True
        assert stub.invocations == 1

        metrics = client.metrics()
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
        assert metrics["solver"]["invocations"] == 1

    def test_different_fingerprints_do_not_coalesce(self, client, job, slow):
        other = job.with_(global_batch=job.global_batch * 2)
        assert other.fingerprint() != job.fingerprint()
        first = client.submit(job, solver="svc-slow")
        second = client.submit(other, solver="svc-slow")
        assert second["coalesced"] is False
        slow.release.set()
        for record in (first, second):
            assert client.wait(record["id"], timeout=10)["status"] == "done"
        assert slow.invocations == 2
        assert client.metrics()["jobs"]["coalesced"] == 0

    def test_same_job_different_solver_does_not_coalesce(
            self, client, job, stub, slow):
        running = client.submit(job, solver="svc-slow")
        other = client.submit(job, solver="svc-stub")
        assert other["coalesced"] is False
        slow.release.set()
        assert client.wait(running["id"], timeout=10)["status"] == "done"
        assert client.wait(other["id"], timeout=10)["status"] == "done"
        assert slow.invocations == 1
        assert stub.invocations == 1

    def test_parallelism_differences_still_coalesce(self, client, job, slow):
        # parallelism is excluded from the fingerprint: a sweep worker
        # asking with 4 threads coalesces onto a 1-thread search
        first = client.submit(job, solver="svc-slow")
        second = client.submit(job.with_(parallelism=4), solver="svc-slow")
        assert second["coalesced"] is True
        slow.release.set()
        assert client.wait(first["id"], timeout=10)["status"] == "done"
        assert client.wait(second["id"], timeout=10)["status"] == "done"
        assert slow.invocations == 1

    def test_cancelling_one_coalesced_record_keeps_search_alive(
            self, client, job, slow):
        first = client.submit(job, solver="svc-slow")
        second = client.submit(job, solver="svc-slow")
        assert second["coalesced"] is True
        # one of two callers bails: the search must keep running for
        # the other
        client.cancel(second["id"])
        slow.release.set()
        assert client.wait(first["id"], timeout=10)["status"] == "done"
        assert client.job(second["id"])["status"] == "cancelled"
        assert slow.invocations == 1

    def test_cancelling_every_record_cancels_the_search(
            self, client, job, slow):
        first = client.submit(job, solver="svc-slow")
        second = client.submit(job, solver="svc-slow")
        assert slow.started.wait(timeout=5)
        client.cancel(first["id"])
        client.cancel(second["id"])
        # the solver's should_stop poll now fires; no release needed
        assert client.wait(first["id"], timeout=10)["status"] == "cancelled"
        assert client.wait(second["id"], timeout=10)["status"] == "cancelled"
        assert client.plan(job.fingerprint(), "svc-slow") is None


class TestCachePersistence:
    def test_cache_survives_daemon_restart(self, tmp_path, job, stub):
        cache_dir = tmp_path / "shared-plans"
        first = TuningService(workers=1, cache=PlanCache(cache_dir))
        handle = first.run_in_thread()
        Client(handle.url, timeout=10).solve(job, solver="svc-stub",
                                             timeout=10)
        handle.stop()
        assert stub.invocations == 1

        second = TuningService(workers=1, cache=PlanCache(cache_dir))
        handle = second.run_in_thread()
        try:
            client = Client(handle.url, timeout=10)
            report = client.solve(job, solver="svc-stub", timeout=10)
            assert report.from_cache is True
            assert stub.invocations == 1      # no new search after restart
            assert client.metrics()["cache"]["hits"] == 1
        finally:
            handle.stop()

    def test_coalesced_record_is_marked_running(self, client, job, slow):
        first = client.submit(job, solver="svc-slow")
        assert slow.started.wait(timeout=5)
        second = client.submit(job, solver="svc-slow")
        assert second["coalesced"] is True
        # attached to an already-running search: lifecycle must not
        # report a solving job as still queued
        record = client.job(second["id"])
        assert record["status"] == "running"
        assert record["started_at"] is not None
        slow.release.set()
        assert client.wait(first["id"], timeout=10)["status"] == "done"
