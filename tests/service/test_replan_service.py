"""``POST /replan``: warm-start routing, latency budget, metrics.

Stub solvers exercise the endpoint mechanics (cold fallback, budget
expiry, cache hits, validation); one test runs the real ``mist``
solver at smoke scale to prove the warm path end to end.
"""

from __future__ import annotations

import time

import pytest

from repro.hardware import ClusterDelta
from repro.service.client import ServiceError

DELTA = ClusterDelta.degrade_link(0.5)


class TestReplanEndpoint:
    def test_metrics_replan_section_shape(self, client):
        replan = client.metrics()["replan"]
        assert replan == {"requests": 0, "warm": 0, "cold_fallback": 0,
                          "cache_hits": 0, "within_budget": 0,
                          "budget_expired": 0}

    def test_cold_fallback_without_incumbent(self, client, job, stub):
        # nothing cached for the base job -> the replan runs cold but
        # still answers, with provenance saying so
        record = client.replan(job, DELTA, solver="svc-stub",
                               budget_seconds=30)
        assert record["status"] == "done"
        extra = record["report"]["extra"]["replan"]
        assert extra["warm"] is False
        assert extra["incumbent"] == "none"
        metrics = client.metrics()["replan"]
        assert metrics["requests"] == 1
        assert metrics["cold_fallback"] == 1
        assert metrics["within_budget"] == 1

    def test_warm_replan_with_mist(self, client, job):
        client.solve(job, solver="mist", timeout=300)
        record = client.replan(job, DELTA, solver="mist",
                               budget_seconds=120)
        assert record["status"] == "done"
        extra = record["report"]["extra"]["replan"]
        assert extra["warm"] is True
        # submit_replan resolves the cached plan under its lock and
        # hands it to the flight explicitly
        assert extra["incumbent"] == "explicit"
        assert extra["describe"] == DELTA.describe()
        metrics = client.metrics()["replan"]
        assert metrics["warm"] == 1
        assert metrics["within_budget"] == 1

    def test_zero_budget_returns_202_with_incumbent(self, client, job,
                                                    slow):
        record = client.replan(job, DELTA, solver="svc-slow",
                               budget_seconds=0)
        assert record["budget_expired"] is True
        assert record["status"] == "running"
        # no cached plan for the base job -> nothing to keep running
        assert record["incumbent_plan"] is None
        slow.release.set()
        final = client.wait(record["id"], timeout=10)
        assert final["status"] == "done"
        metrics = client.metrics()["replan"]
        assert metrics["budget_expired"] == 1
        assert metrics["within_budget"] == 0

    def test_repeat_replan_is_cache_hit(self, client, job, stub):
        first = client.replan(job, DELTA, solver="svc-stub",
                              budget_seconds=30)
        assert first["status"] == "done"
        invocations_after_first = stub.invocations
        second = client.replan(job, DELTA, solver="svc-stub",
                               budget_seconds=30)
        assert second["status"] == "done"
        assert stub.invocations == invocations_after_first
        metrics = client.metrics()["replan"]
        assert metrics["requests"] == 2
        assert metrics["cache_hits"] == 1

    def test_validation_errors(self, client, job):
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/replan", {"job": job.to_dict()})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.replan(job, {"ops": [{"op": "teleport"}]},
                          solver="svc-stub")
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/replan",
                            {"job": job.to_dict(),
                             "delta": DELTA.to_dict(),
                             "budget_seconds": "soon"})
        assert exc.value.status == 400

    def test_unknown_solver_404(self, client, job):
        with pytest.raises(ServiceError) as exc:
            client.replan(job, DELTA, solver="no-such-solver")
        assert exc.value.status == 404

    def test_budget_expiry_surfaces_cached_incumbent(self, client, job):
        # a real mist solve caches a plan; the zero-budget replan then
        # expires immediately (the warm search takes seconds) and the
        # 202 carries that plan as the one to keep running
        client.solve(job, solver="mist", timeout=300)
        record = client.replan(job, DELTA, solver="mist",
                               budget_seconds=0)
        assert record["budget_expired"] is True
        assert record["incumbent_plan"] is not None
        final = client.wait(record["id"], timeout=300)
        assert final["status"] == "done"
        assert final["report"]["extra"]["replan"]["warm"] is True

    def test_budget_waits_for_fast_finish(self, client, job, slow):
        # a generous budget returns 200 once the flight finishes: the
        # release happens from a timer shorter than the budget
        import threading
        threading.Timer(0.2, slow.release.set).start()
        start = time.perf_counter()
        record = client.replan(job, DELTA, solver="svc-slow",
                               budget_seconds=10)
        elapsed = time.perf_counter() - start
        assert record["status"] == "done"
        assert "budget_expired" not in record
        assert elapsed < 10
