"""Endpoint and lifecycle coverage for the `repro serve` daemon."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import SolveReport
from repro.service import ServiceError


class TestHealthAndMetrics:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert "mist" in health["solvers"]
        assert health["workers"] == 2

    def test_metrics_initial_shape(self, client):
        metrics = client.metrics()
        assert metrics["jobs"]["submitted"] == 0
        assert metrics["cache"] == {"hits": 0, "misses": 0}
        assert metrics["solver"]["invocations"] == 0
        assert metrics["uptime_seconds"] >= 0
        assert metrics["search"] == {
            "cells_total": 0, "cells_explored": 0, "cells_pruned": 0,
            "cells_infeasible": 0, "configs_evaluated": 0,
            "configs_prefiltered": 0, "memo_hits": 0, "memo_misses": 0,
        }

    def test_metrics_accumulate_search_counters(self, client, job, stub):
        client.solve(job, solver="svc-stub", timeout=10)
        metrics = client.metrics()
        search = metrics["search"]
        assert search["cells_total"] == 4
        assert search["cells_explored"] == 2
        assert search["cells_pruned"] == 2
        assert search["memo_hits"] == 1
        assert search["memo_misses"] == 3
        # the cached repeat runs no search: counters must not move
        client.solve(job, solver="svc-stub", timeout=10)
        assert client.metrics()["search"] == search


class TestJobLifecycle:
    def test_submit_wait_report_roundtrip(self, client, job, stub):
        record = client.submit(job, solver="svc-stub")
        assert record["status"] in ("queued", "running", "done")
        assert record["fingerprint"] == job.fingerprint()
        final = client.wait(record["id"], timeout=10)
        assert final["status"] == "done"
        report = SolveReport.from_dict(final["report"])
        assert report.throughput == 7.5
        assert report.job == job

    def test_client_solve_helper(self, client, job, stub):
        report = client.solve(job, solver="svc-stub", timeout=10)
        assert isinstance(report, SolveReport)
        assert report.throughput == 7.5
        assert report.from_cache is False
        # second time: daemon answers from its plan cache
        again = client.solve(job, solver="svc-stub", timeout=10)
        assert again.from_cache is True
        assert stub.invocations == 1

    def test_progress_relayed_to_job_record(self, client, job, slow):
        record = client.submit(job, solver="svc-slow")
        assert slow.started.wait(timeout=5)
        seen = client.job(record["id"])
        assert seen["status"] == "running"
        assert seen["progress"] == {"done": 1, "total": 2}
        slow.release.set()
        final = client.wait(record["id"], timeout=10)
        assert final["progress"] == {"done": 2, "total": 2}

    def test_jobs_listing_omits_reports(self, client, job, stub):
        client.solve(job, solver="svc-stub", timeout=10)
        listed = client.jobs()
        assert len(listed) == 1
        assert listed[0]["status"] == "done"
        assert "report" not in listed[0]

    def test_cancellation(self, client, job, slow):
        record = client.submit(job, solver="svc-slow")
        assert slow.started.wait(timeout=5)
        cancelled = client.cancel(record["id"])
        assert cancelled["status"] == "cancelled"
        # the cooperative hook lands at the solver's next poll; the
        # record stays cancelled and nothing was cached
        final = client.wait(record["id"], timeout=10)
        assert final["status"] == "cancelled"
        assert client.plan(job.fingerprint(), "svc-slow") is None
        assert client.metrics()["jobs"]["cancelled"] == 1

    def test_cancel_finished_job_is_noop(self, client, job, stub):
        record = client.submit(job, solver="svc-stub")
        client.wait(record["id"], timeout=10)
        after = client.cancel(record["id"])
        assert after["status"] == "done"
        assert client.metrics()["jobs"]["cancelled"] == 0

    def test_failed_solver_marks_job_failed(self, client, job, stub):
        stub.fail_with = RuntimeError("kaboom")
        record = client.submit(job, solver="svc-stub")
        final = client.wait(record["id"], timeout=10)
        assert final["status"] == "failed"
        assert "kaboom" in final["error"]
        assert client.metrics()["jobs"]["failed"] == 1
        # a failure is not cached: the next submission searches again
        stub.fail_with = None
        report = client.solve(job, solver="svc-stub", timeout=10)
        assert report.from_cache is False
        assert stub.invocations == 2

    def test_client_solve_raises_on_failure(self, client, job, stub):
        stub.fail_with = ValueError("bad geometry")
        with pytest.raises(ServiceError, match="bad geometry"):
            client.solve(job, solver="svc-stub", timeout=10)


class TestPlansEndpoint:
    def test_miss_then_hit(self, client, job, stub):
        assert client.plan(job.fingerprint(), "svc-stub") is None
        client.solve(job, solver="svc-stub", timeout=10)
        report = client.plan(job.fingerprint(), "svc-stub")
        assert report is not None
        assert report.from_cache is True
        assert report.throughput == 7.5


class TestErrorHandling:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("job-doesnotexist")
        assert err.value.status == 404

    def test_unknown_solver_404(self, client, job):
        with pytest.raises(ServiceError) as err:
            client.submit(job, solver="no-such-backend")
        assert err.value.status == 404
        assert "no-such-backend" in str(err.value)

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_method_not_allowed_405(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("DELETE", "/jobs")
        assert err.value.status == 405

    def test_invalid_json_body_400(self, client):
        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400

    def test_missing_job_field_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/jobs", {"solver": "svc-stub"})
        assert err.value.status == 400

    def test_invalid_job_400(self, client, job):
        bad = dict(job.to_dict(), num_gpus=0)
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/jobs",
                            {"job": bad, "solver": "svc-stub"})
        assert err.value.status == 400
        assert "num_gpus" in str(err.value)

    def test_responses_are_strict_json(self, client):
        with urllib.request.urlopen(client.base_url + "/healthz",
                                    timeout=5) as response:
            assert response.headers["Content-Type"] == "application/json"
            json.loads(response.read().decode())


class TestRunnerIntegration:
    def test_run_via_service(self, client, stub):
        from repro.evaluation import WorkloadSpec
        from repro.evaluation.runner import run_via_service

        spec = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)
        outcome = run_via_service(spec, "svc-stub",
                                  client.base_url, timeout=10)
        assert outcome.found
        assert outcome.result is None          # runtime objects never ship
        assert outcome.throughput == 7.5       # ...but measurements do
        assert outcome.extra["service_url"] == client.base_url

    def test_compare_systems_against_live_server(self, client, stub):
        from repro.evaluation import WorkloadSpec
        from repro.evaluation.runner import compare_systems

        spec = WorkloadSpec("gpt3-1.3b", "L4", 2, 16, 2048)
        comparison = compare_systems(spec, systems=("svc-stub",),
                                     service_url=client.base_url)
        assert comparison.outcomes["svc-stub"].throughput == 7.5


class TestInProcessApi:
    def test_get_job_raises_public_keyerror(self, service):
        from repro.service import UnknownJobError

        with pytest.raises(UnknownJobError):
            service.get_job("job-missing")
        with pytest.raises(KeyError):  # catchable as plain KeyError too
            service.cancel_job("job-missing")

    def test_wait_timeout_zero_fails_fast(self, client, job, slow):
        record = client.submit(job, solver="svc-slow")
        assert slow.started.wait(timeout=5)
        with pytest.raises(TimeoutError):
            client.wait(record["id"], timeout=0)

    def test_negative_content_length_400(self, client):
        import http.client as http_client

        conn = http_client.HTTPConnection(
            client.base_url.removeprefix("http://"), timeout=5)
        try:
            conn.putrequest("POST", "/jobs", skip_accept_encoding=True)
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()
