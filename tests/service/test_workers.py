"""Worker tiers: routing, differential plan identity, coalescing.

The differential tests are the PR's core guarantee: a plan produced by
a routed worker *process* is bit-identical (by
:func:`repro.benchmarking.plan_hash`) to the plan the same job gets
from inline :func:`repro.api.solve` and from the thread tier — caching
and multi-process execution change *where* a search runs, never what
it answers.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.api import PlanCache, TuningJob, solve
from repro.benchmarking import plan_hash
from repro.service import running_service
from repro.service.workers import (
    ProcessWorkerTier,
    ThreadWorkerTier,
    make_tier,
)

MIXED_CLUSTER = {
    "groups": [
        {"name": "a100", "gpu": "A100-40GB", "num_nodes": 1,
         "gpus_per_node": 2},
        {"name": "l4", "gpu": "L4", "num_nodes": 1, "gpus_per_node": 2},
    ],
}

SMOKE_JOB = TuningJob(model="gpt3-1.3b", gpu="L4", num_gpus=2,
                      global_batch=16, scale="smoke", interference="none")
HETERO_JOB = TuningJob.for_cluster(MIXED_CLUSTER, model="gpt3-1.3b",
                                   global_batch=16, scale="smoke",
                                   interference="none")


class TestRouting:
    def test_route_is_deterministic(self):
        tier = ProcessWorkerTier(4)
        fp = SMOKE_JOB.fingerprint()
        assert tier.route("mist", fp) == tier.route("mist", fp)

    def test_route_depends_on_solver_and_fingerprint(self):
        tier = ProcessWorkerTier(64)
        fp = SMOKE_JOB.fingerprint()
        indices = {tier.route(solver, fp)
                   for solver in ("mist", "alpa", "synthetic", "svc-stub")}
        other = tier.route(
            "mist", dataclasses.replace(SMOKE_JOB,
                                        global_batch=8).fingerprint())
        # with 64 slots, 4 solvers + a second fingerprint collapsing to
        # one index would mean routing ignores its inputs
        assert len(indices | {other}) > 1

    def test_route_covers_all_workers(self):
        tier = ProcessWorkerTier(4)
        jobs = [dataclasses.replace(SMOKE_JOB, options={"cell": i})
                for i in range(64)]
        hit = {tier.route("mist", job.fingerprint()) for job in jobs}
        assert hit == {0, 1, 2, 3}

    def test_route_in_range(self):
        tier = ProcessWorkerTier(3)
        for i in range(32):
            job = dataclasses.replace(SMOKE_JOB, options={"cell": i})
            assert 0 <= tier.route("mist", job.fingerprint()) < 3


class TestMakeTier:
    def test_thread_mode(self):
        tier = make_tier("thread", 2)
        assert isinstance(tier, ThreadWorkerTier)
        assert tier.stats() == {"mode": "thread", "workers": 2,
                                "restarts": 0}
        assert tier.warm() == []
        assert tier.worker_pids() == []

    def test_process_mode(self):
        tier = make_tier("process", 3, retries=2)
        assert isinstance(tier, ProcessWorkerTier)
        assert tier.retries == 2
        assert tier.stats() == {"mode": "process", "workers": 3,
                                "restarts": 0}
        # nothing spawned yet: pids are per-slot placeholders
        assert tier.worker_pids() == [None, None, None]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown worker mode"):
            make_tier("fork", 2)

    def test_solve_fn_requires_thread_mode(self):
        with pytest.raises(ValueError, match="thread"):
            make_tier("process", 2, solve_fn=lambda *a, **k: None)

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            ProcessWorkerTier(0)
        with pytest.raises(ValueError):
            ProcessWorkerTier(2, retries=-1)


class TestDifferentialIdentity:
    """Same job, three execution paths, one plan hash."""

    def test_process_worker_plans_match_inline(self, tmp_path):
        jobs = {"homogeneous": SMOKE_JOB, "heterogeneous": HETERO_JOB}
        want = {}
        for label, job in jobs.items():
            inline = solve(job, "mist",
                           cache=PlanCache(tmp_path / "inline"))
            assert inline.plan is not None, label
            want[label] = plan_hash(inline.plan)

        for mode in ("thread", "process"):
            with running_service(workers=2, worker_mode=mode,
                                 cache=PlanCache(tmp_path / mode),
                                 client_timeout=120.0) as (_, client):
                for label, job in jobs.items():
                    report = client.solve(job, solver="mist", timeout=120)
                    assert not report.from_cache, (mode, label)
                    assert plan_hash(report.plan) == want[label], \
                        (mode, label)

    def test_worker_report_lands_in_shared_cache(self, tmp_path):
        cache = PlanCache(tmp_path / "plans")
        with running_service(workers=2, worker_mode="process",
                             cache=cache,
                             client_timeout=120.0) as (_, client):
            first = client.solve(SMOKE_JOB, solver="mist", timeout=120)
            second = client.solve(SMOKE_JOB, solver="mist", timeout=30)
        assert not first.from_cache
        # the worker process stored into the daemon's on-disk cache
        assert second.from_cache
        assert plan_hash(second.plan) == plan_hash(first.plan)
        metrics_hit = cache.load(SMOKE_JOB, "mist")
        assert metrics_hit is not None


class TestCoalescingUnderProcesses:
    def test_concurrent_identical_posts_share_one_search(self, tmp_path):
        job = dataclasses.replace(
            SMOKE_JOB, options={"synthetic": {"seconds": 1.0}})
        with running_service(workers=2, worker_mode="process",
                             cache=PlanCache(tmp_path / "plans"),
                             client_timeout=60.0) as (_, client):
            records = [None] * 4

            def post(slot: int) -> None:
                records[slot] = client.submit(job, solver="synthetic")

            threads = [threading.Thread(target=post, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            finals = [client.wait(record["id"], timeout=60)
                      for record in records]
            metrics = client.metrics()

        assert all(final["status"] == "done" for final in finals)
        # exactly one search ran; everyone else coalesced or hit cache
        assert metrics["solver"]["invocations"] == 1
        joined = sum(1 for final in finals if final["coalesced"])
        hits = metrics["cache"]["hits"]
        assert joined + hits == 3, (joined, hits, metrics)
