"""Tests for interpreter and compiled evaluation, including batched numpy."""

import numpy as np
import pytest

from repro.symbolic import (
    EvaluationError,
    Le,
    Piecewise,
    Sym,
    ceil_div,
    compile_expr,
    evaluate,
    smax,
    smin,
)


@pytest.fixture
def xy():
    return Sym("x"), Sym("y")


class TestInterpreter:
    def test_scalar_arithmetic(self, xy):
        x, y = xy
        assert evaluate(x * y + 2, {"x": 3, "y": 4}) == 14

    def test_division(self, xy):
        x, y = xy
        assert evaluate(x / y, {"x": 1, "y": 4}) == 0.25

    def test_floordiv(self, xy):
        x, y = xy
        assert evaluate(x // y, {"x": 7, "y": 2}) == 3

    def test_mod(self, xy):
        x, y = xy
        assert evaluate(x % y, {"x": 7, "y": 4}) == 3

    def test_pow(self, xy):
        x, _ = xy
        assert evaluate(x**2, {"x": 5}) == 25

    def test_max_min(self, xy):
        x, y = xy
        assert evaluate(smax(x, y), {"x": 3, "y": 9}) == 9
        assert evaluate(smin(x, y), {"x": 3, "y": 9}) == 3

    def test_ceil(self, xy):
        x, y = xy
        assert evaluate(ceil_div(x, y), {"x": 7, "y": 2}) == 4

    def test_piecewise(self, xy):
        x, _ = xy
        expr = Piecewise.make(Le(x, 5), x * 2, x * 3)
        assert evaluate(expr, {"x": 4}) == 8
        assert evaluate(expr, {"x": 6}) == 18

    def test_missing_symbol_raises(self, xy):
        x, y = xy
        with pytest.raises(EvaluationError, match="y"):
            evaluate(x + y, {"x": 1})

    def test_batched_arrays(self, xy):
        x, y = xy
        xs = np.array([1.0, 2.0, 3.0])
        result = evaluate(x * y, {"x": xs, "y": 10})
        np.testing.assert_allclose(result, [10.0, 20.0, 30.0])

    def test_broadcasting(self, xy):
        x, y = xy
        xs = np.array([[1.0], [2.0]])
        ys = np.array([10.0, 20.0, 30.0])
        result = evaluate(x + y, {"x": xs, "y": ys})
        assert result.shape == (2, 3)


class TestCompiled:
    def test_matches_interpreter_scalar(self, xy):
        x, y = xy
        expr = smax(x * y + 2, x - y) + ceil_div(x, 3)
        compiled = compile_expr(expr)
        env = {"x": 7, "y": 2}
        assert compiled(**env) == evaluate(expr, env)

    def test_matches_interpreter_batched(self, xy):
        x, y = xy
        expr = Piecewise.make(Le(x, 5), x * y, x + y)
        compiled = compile_expr(expr)
        xs = np.linspace(0, 10, 23)
        ys = np.linspace(1, 3, 23)
        np.testing.assert_allclose(
            compiled(x=xs, y=ys), evaluate(expr, {"x": xs, "y": ys})
        )

    def test_multiple_outputs(self, xy):
        x, y = xy
        shared = x * y
        e1 = shared + 1
        e2 = shared * 2
        compiled = compile_expr([e1, e2])
        r1, r2 = compiled(x=3, y=4)
        assert r1 == 13
        assert r2 == 24

    def test_common_subexpression_emitted_once(self, xy):
        x, y = xy
        shared = x * y + 1
        compiled = compile_expr([shared + 2, shared * 3])
        # The shared sub-expression should appear exactly once in the source.
        assert compiled.source.count("+ 1.0") == 1

    def test_explicit_arg_order(self, xy):
        x, y = xy
        compiled = compile_expr(x - y, arg_names=["y", "x"])
        assert compiled.arg_names == ("y", "x")
        assert compiled(x=10, y=3) == 7

    def test_missing_arg_raises(self, xy):
        x, y = xy
        compiled = compile_expr(x + y)
        with pytest.raises(EvaluationError):
            compiled(x=1)

    def test_constant_expression(self):
        compiled = compile_expr(Sym("x") * 0 + 42)
        assert compiled() == 42

    def test_floordiv_on_floats(self, xy):
        x, y = xy
        compiled = compile_expr(x // y)
        assert compiled(x=7.0, y=2.0) == 3.0

    def test_large_values_no_overflow(self, xy):
        x, _ = xy
        # 22B params * 16 bytes — needs float64 headroom, not int32.
        compiled = compile_expr(x * 16)
        assert compiled(x=np.array([22e9]))[0] == pytest.approx(3.52e11)
