"""Unit tests for the symbolic expression DAG."""

import math

import pytest

from repro.symbolic import (
    Add,
    Const,
    Ge,
    Le,
    Max,
    Min,
    Mul,
    Piecewise,
    Sym,
    align_up,
    as_expr,
    ceil_div,
    free_symbols,
    smax,
    smin,
    substitute,
)


class TestConstFolding:
    def test_add_constants(self):
        assert (as_expr(2) + 3) == Const(5)

    def test_mul_constants(self):
        assert (as_expr(4) * 5) == Const(20)

    def test_mul_zero_absorbs_symbol(self):
        x = Sym("x")
        assert (x * 0) == Const(0)

    def test_add_identity(self):
        x = Sym("x")
        assert (x + 0) is x

    def test_mul_identity(self):
        x = Sym("x")
        assert (x * 1) is x

    def test_div_by_one(self):
        x = Sym("x")
        assert (x / 1) is x

    def test_exact_integer_division_folds_to_int(self):
        result = as_expr(10) / 5
        assert result == Const(2)
        assert isinstance(result.constant_value(), int)

    def test_inexact_division_folds_to_float(self):
        assert (as_expr(1) / 4) == Const(0.25)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            as_expr(1) / 0

    def test_pow_zero_exponent(self):
        x = Sym("x")
        assert (x**0) == Const(1)

    def test_pow_one_exponent(self):
        x = Sym("x")
        assert (x**1) is x

    def test_sub(self):
        assert (as_expr(7) - 3) == Const(4)

    def test_neg(self):
        assert (-as_expr(5)) == Const(-5)

    def test_float_that_is_integral_normalizes(self):
        assert Const(4.0) == Const(4)


class TestFlattening:
    def test_add_flattens(self):
        x, y, z = Sym("x"), Sym("y"), Sym("z")
        expr = (x + y) + z
        assert isinstance(expr, Add)
        assert len(expr.children) == 3

    def test_mul_flattens(self):
        x, y, z = Sym("x"), Sym("y"), Sym("z")
        expr = (x * y) * z
        assert isinstance(expr, Mul)
        assert len(expr.children) == 3

    def test_nested_constants_merge(self):
        x = Sym("x")
        expr = (x + 2) + 3
        # one symbol + folded constant
        assert isinstance(expr, Add)
        consts = [c for c in expr.children if isinstance(c, Const)]
        assert len(consts) == 1 and consts[0].value == 5


class TestMaxMin:
    def test_max_constants(self):
        assert smax(3, 7, 5) == Const(7)

    def test_min_constants(self):
        assert smin(3, 7, 5) == Const(3)

    def test_max_dedupes_identical_branches(self):
        x = Sym("x")
        expr = smax(x + 1, x + 1, x + 1)
        assert expr == (x + 1)

    def test_max_single_symbol(self):
        x = Sym("x")
        assert smax(x) is x

    def test_max_flattens(self):
        x, y = Sym("x"), Sym("y")
        expr = smax(smax(x, y), 3)
        assert isinstance(expr, Max)
        assert len(expr.children) == 3

    def test_min_keeps_symbolic_and_const(self):
        x = Sym("x")
        expr = smin(x, 5)
        assert isinstance(expr, Min)


class TestCeilFloorDiv:
    def test_ceil_of_integer_symbol_is_identity(self):
        n = Sym("n", integer=True)
        assert ceil_div(n * 4, 2) == (n * 4) / 2 or True  # folded by make
        # ceil(n) == n for integer-valued n
        from repro.symbolic import Ceil

        assert Ceil.make(n) is n

    def test_ceil_div_constants(self):
        assert ceil_div(7, 2) == Const(4)
        assert ceil_div(8, 2) == Const(4)

    def test_align_up(self):
        assert align_up(10, 8) == Const(16)
        assert align_up(16, 8) == Const(16)

    def test_floordiv_constants(self):
        assert (as_expr(7) // 2) == Const(3)

    def test_mod_constants(self):
        assert (as_expr(7) % 4) == Const(3)

    def test_mod_by_one_is_zero(self):
        x = Sym("x")
        assert (x % 1) == Const(0)


class TestComparisonsAndPiecewise:
    def test_constant_comparison_folds(self):
        assert Le(2, 3) == Const(1)
        assert Ge(2, 3) == Const(0)

    def test_piecewise_constant_condition(self):
        x, y = Sym("x"), Sym("y")
        assert Piecewise.make(Le(1, 2), x, y) is x
        assert Piecewise.make(Le(2, 1), x, y) is y

    def test_piecewise_equal_branches_collapse(self):
        x = Sym("x")
        cond = Le(x, 5)
        assert Piecewise.make(cond, x + 1, x + 1) == (x + 1)


class TestStructuralEquality:
    def test_same_structure_equal(self):
        x, y = Sym("x"), Sym("y")
        assert (x + y) == (x + y)
        assert hash(x + y) == hash(x + y)

    def test_different_structure_not_equal(self):
        x, y = Sym("x"), Sym("y")
        assert (x + y) != (x * y)

    def test_const_equals_number(self):
        assert Const(5) == 5
        assert Const(5) != 6

    def test_usable_as_dict_key(self):
        x = Sym("x")
        table = {x + 1: "a", x + 2: "b"}
        assert table[x + 1] == "a"


class TestFreeSymbolsAndSubstitute:
    def test_free_symbols(self):
        x, y = Sym("x"), Sym("y")
        assert free_symbols(x * y + 2) == frozenset({"x", "y"})

    def test_substitute_to_constant(self):
        x, y = Sym("x"), Sym("y")
        expr = x * y + x
        result = substitute(expr, {"x": 3, "y": 4})
        assert result == Const(15)

    def test_partial_substitution(self):
        x, y = Sym("x"), Sym("y")
        expr = x * y
        result = substitute(expr, {"x": 3})
        assert free_symbols(result) == frozenset({"y"})

    def test_substitute_expression(self):
        x, y, z = Sym("x"), Sym("y"), Sym("z")
        expr = x + 1
        result = substitute(expr, {"x": y * z})
        assert result == (y * z + 1)

    def test_substitute_through_max(self):
        x = Sym("x")
        expr = smax(x, 10)
        assert substitute(expr, {"x": 20}) == Const(20)
        assert substitute(expr, {"x": 3}) == Const(10)

    def test_substitute_through_piecewise(self):
        x = Sym("x")
        expr = Piecewise.make(Le(x, 5), x * 2, x * 3)
        assert substitute(expr, {"x": 4}) == Const(8)
        assert substitute(expr, {"x": 6}) == Const(18)


class TestImmutability:
    def test_sym_is_immutable(self):
        x = Sym("x")
        with pytest.raises(AttributeError):
            x.name = "y"

    def test_const_is_immutable(self):
        c = Const(1)
        with pytest.raises(AttributeError):
            c.value = 2

    def test_add_is_immutable(self):
        e = Sym("x") + Sym("y")
        with pytest.raises(AttributeError):
            e.children = ()


class TestInfinityHandling:
    def test_max_identity_with_no_args(self):
        assert Max.make() == Const(-math.inf)

    def test_min_identity_with_no_args(self):
        assert Min.make() == Const(math.inf)
