"""Property-based tests (hypothesis) for the symbolic engine.

Invariants:
* interpreter and compiled evaluation agree on random expressions,
* substitution of all symbols yields the same value as evaluation,
* simplification preserves semantics,
* structural equality implies equal evaluation.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Sym,
    as_expr,
    ceil_div,
    compile_expr,
    evaluate,
    free_symbols,
    simplify,
    smax,
    smin,
    substitute,
)

SYMBOL_NAMES = ("x", "y", "z")
SYMS = {name: Sym(name) for name in SYMBOL_NAMES}


def expr_strategy(max_depth: int = 4):
    """Random expression trees over x, y, z with safe operations."""
    leaves = st.one_of(
        st.sampled_from(list(SYMS.values())),
        st.integers(min_value=-20, max_value=20).map(as_expr),
        st.floats(
            min_value=-20, max_value=20, allow_nan=False, allow_infinity=False
        ).map(as_expr),
    )

    def extend(children):
        binary = st.tuples(children, children)
        return st.one_of(
            binary.map(lambda ab: ab[0] + ab[1]),
            binary.map(lambda ab: ab[0] - ab[1]),
            binary.map(lambda ab: ab[0] * ab[1]),
            binary.map(lambda ab: smax(ab[0], ab[1])),
            binary.map(lambda ab: smin(ab[0], ab[1])),
            children.map(lambda a: ceil_div(a, 3)),
            children.map(lambda a: a / 7),
        )

    return st.recursive(leaves, extend, max_leaves=max_depth * 4)


env_strategy = st.fixed_dictionaries(
    {
        name: st.floats(min_value=-100, max_value=100, allow_nan=False)
        for name in SYMBOL_NAMES
    }
)


@settings(max_examples=150, deadline=None)
@given(expr=expr_strategy(), env=env_strategy)
def test_compiled_matches_interpreter(expr, env):
    interpreted = evaluate(expr, env)
    compiled = compile_expr(expr, arg_names=SYMBOL_NAMES)(**env)
    assert math.isclose(float(interpreted), float(compiled), rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=150, deadline=None)
@given(expr=expr_strategy(), env=env_strategy)
def test_substitution_matches_evaluation(expr, env):
    substituted = substitute(expr, env)
    assert substituted.is_constant
    assert math.isclose(
        float(substituted.constant_value()),
        float(evaluate(expr, env)),
        rel_tol=1e-9,
        abs_tol=1e-9,
    )


@settings(max_examples=150, deadline=None)
@given(expr=expr_strategy(), env=env_strategy)
def test_simplify_preserves_semantics(expr, env):
    simplified = simplify(expr)
    assert math.isclose(
        float(evaluate(simplified, env)),
        float(evaluate(expr, env)),
        rel_tol=1e-9,
        abs_tol=1e-6,
    )


@settings(max_examples=100, deadline=None)
@given(expr=expr_strategy())
def test_free_symbols_subset(expr):
    assert free_symbols(expr) <= set(SYMBOL_NAMES)


@settings(max_examples=100, deadline=None)
@given(expr=expr_strategy(), env=env_strategy)
def test_batched_evaluation_matches_scalar(expr, env):
    """Evaluating a batch of size 3 equals three scalar evaluations."""
    batch_env = {
        name: np.array([value, value + 1.0, value * 2.0])
        for name, value in env.items()
    }
    batched = np.asarray(evaluate(expr, batch_env), dtype=float)
    if batched.ndim == 0:  # constant expression
        batched = np.full(3, float(batched))
    for i in range(3):
        scalar_env = {name: batch_env[name][i] for name in SYMBOL_NAMES}
        assert math.isclose(
            float(evaluate(expr, scalar_env)), float(batched[i]),
            rel_tol=1e-9, abs_tol=1e-9,
        )


@settings(max_examples=100, deadline=None)
@given(expr=expr_strategy(), env=env_strategy)
def test_structural_equality_implies_equal_value(expr, env):
    clone = substitute(expr, {})  # identity substitution rebuilds the DAG
    assert clone == expr
    assert float(evaluate(clone, env)) == float(evaluate(expr, env))
