"""Differential harness: vectorized vs interpreted evaluation bit-identity.

The vectorized cost-model engine's contract is *bit-identity*, not mere
closeness: for the same expression and the same IEEE-754 inputs the
compiled numpy path must produce the exact bits the per-row interpreter
produces, because the tuner's plan hashes and tie-breaks flow through
these floats unchanged. The tests here attack that contract from two
directions:

* **expression level** — seeded random expression trees evaluated four
  ways (batched interpreter, per-row scalar interpreter, scalar
  compiled calls, whole-array compiled call) must agree bit for bit,
  including NaN/inf propagation, empty menus and length-1 menus;
* **search level** — ``MistTuner.search(engine=...)`` must return
  byte-identical plans and identical work counters across engines, with
  prune on and off, on homogeneous *and* heterogeneous clusters.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.benchmarking import plan_hash
from repro.core import NAMED_SPACES, MenuMemo, MistTuner
from repro.evaluation import calibrated_interference
from repro.evaluation.workloads import get_scale
from repro.hardware import DeviceGroup, HeterogeneousCluster, make_cluster
from repro.models import get_model
from repro.symbolic import (
    ENGINES,
    EvaluationError,
    Lt,
    Piecewise,
    Sym,
    as_expr,
    ceil_div,
    compile_expr,
    evaluate,
    smax,
    smin,
    validate_engine,
)

SYMBOL_NAMES = ("x", "y", "z")
SYMS = tuple(Sym(name) for name in SYMBOL_NAMES)


# ---------------------------------------------------------------------------
# seeded random expression trees
# ---------------------------------------------------------------------------

def _random_expr(rng: random.Random, depth: int):
    """A random expression tree over x, y, z covering every node kind."""
    if depth <= 0 or rng.random() < 0.25:
        roll = rng.random()
        if roll < 0.5:
            return rng.choice(SYMS)
        if roll < 0.8:
            return as_expr(rng.choice([-7, -2, 0, 1, 2, 3, 8, 64]))
        return as_expr(rng.uniform(-50.0, 50.0))
    a = _random_expr(rng, depth - 1)
    b = _random_expr(rng, depth - 1)
    ops = [
        lambda: a + b,
        lambda: a - b,
        lambda: a * b,
        lambda: a / (b + 13),          # shift, not avoid: zero still possible
        lambda: a // 3,
        lambda: a % 5,
        lambda: smax(a, b),
        lambda: smin(a, b),
        lambda: ceil_div(a, 4),
        lambda: Piecewise.make(Lt(a, b), a + 1, b * 2),
    ]
    return rng.choice(ops)()


def _random_env(rng: random.Random, n: int, special: bool) -> dict:
    """A batched env of ``n`` rows; sprinkles NaN/inf when ``special``."""
    env = {}
    for name in SYMBOL_NAMES:
        col = np.asarray(
            [rng.uniform(-100.0, 100.0) for _ in range(n)], dtype=float
        ).reshape(n)
        if special and n:
            for value in (np.nan, np.inf, -np.inf):
                col[rng.randrange(n)] = value
        env[name] = col
    return env


def _bit_identical(a, b) -> bool:
    """Exact float64 equality, NaN == NaN (bitwise contract)."""
    return np.array_equal(
        np.asarray(a, dtype=float), np.asarray(b, dtype=float), equal_nan=True
    )


def _describe(expr, env, lhs, rhs, what: str) -> str:
    return (f"{what} diverged for {expr!r}\n env={env}\n"
            f" lhs={np.asarray(lhs)!r}\n rhs={np.asarray(rhs)!r}")


class TestExpressionDifferential:
    """Four evaluation paths agree bitwise on seeded random trees."""

    @pytest.mark.parametrize("seed", range(40))
    @pytest.mark.parametrize("n", [0, 1, 7])
    def test_paths_agree_elementwise(self, seed, n):
        rng = random.Random(0xD1FF + seed)
        expr = _random_expr(rng, depth=4)
        env = _random_env(rng, n, special=seed % 2 == 0)
        fn = compile_expr(expr, arg_names=SYMBOL_NAMES)

        with np.errstate(all="ignore"):
            batched = np.broadcast_to(
                np.asarray(evaluate(expr, env), dtype=float), (n,)
            )
            vectorized = np.broadcast_to(
                np.asarray(fn(**env), dtype=float), (n,)
            )
            ref = np.broadcast_to(
                np.asarray(fn.interpret(**env), dtype=float), (n,)
            )
            scalar = np.asarray(
                [fn(**{k: float(v[i]) for k, v in env.items()})
                 for i in range(n)],
                dtype=float,
            ).reshape(n)

        assert _bit_identical(vectorized, batched), _describe(
            expr, env, vectorized, batched, "compiled-array vs interpreter")
        assert _bit_identical(vectorized, ref), _describe(
            expr, env, vectorized, ref, "compiled-array vs interpret()")
        assert _bit_identical(vectorized, scalar), _describe(
            expr, env, vectorized, scalar, "compiled-array vs scalar calls")

    @pytest.mark.parametrize("seed", range(10))
    def test_scalar_env_returns_scalar(self, seed):
        rng = random.Random(0xBEEF + seed)
        expr = _random_expr(rng, depth=3)
        env = {name: rng.uniform(-10.0, 10.0) for name in SYMBOL_NAMES}
        fn = compile_expr(expr, arg_names=SYMBOL_NAMES)
        with np.errstate(all="ignore"):
            direct = fn(**env)
            ref = fn.interpret(**env)
        assert np.ndim(ref) == 0
        assert _bit_identical(direct, ref)

    def test_multi_output_interpret_matches_call(self):
        x, y, z = SYMS
        exprs = [x + y * z, smax(x, y) / (z + 13), ceil_div(x * y, 4)]
        fn = compile_expr(exprs, arg_names=SYMBOL_NAMES)
        env = {
            "x": np.array([1.0, -3.5, np.inf]),
            "y": np.array([2.0, 0.25, -1.0]),
            "z": np.array([-4.0, np.nan, 9.0]),
        }
        with np.errstate(all="ignore"):
            called = fn(**env)
            interpreted = fn.interpret(**env)
        assert isinstance(called, tuple) and isinstance(interpreted, tuple)
        assert len(called) == len(interpreted) == len(exprs)
        for got, want in zip(interpreted, called):
            assert _bit_identical(got, want)

    def test_broadcasting_matches(self):
        # scalar + array env rows broadcast identically on both paths
        x, y, z = SYMS
        fn = compile_expr(x * y + z, arg_names=SYMBOL_NAMES)
        env = {"x": 3.0, "y": np.array([1.0, 2.0, 4.0]), "z": -1.5}
        assert _bit_identical(fn.interpret(**env), fn(**env))


class TestEvaluationErrors:
    def test_missing_symbols_all_reported_with_root(self):
        x, y, z = SYMS
        expr = x + y * z
        with pytest.raises(EvaluationError) as exc:
            evaluate(expr, {"y": 2.0})
        message = str(exc.value)
        # every missing name, not just the first one encountered
        assert "'x'" in message and "'z'" in message
        assert "'y'" not in message.split(";")[0]
        # and the expression root so the caller knows *which* formula
        assert "(x + (y * z))" in message or "x" in message

    def test_interpret_requires_raw_trees(self):
        from repro.symbolic.evaluate import CompiledExpr

        bare = CompiledExpr(lambda a: a, ("x",), 1, "def _compiled(a): ...")
        with pytest.raises(EvaluationError, match="raw expression trees"):
            bare.interpret(x=1.0)

    def test_validate_engine(self):
        assert validate_engine("vectorized") == "vectorized"
        assert validate_engine("interpreted") == "interpreted"
        with pytest.raises(ValueError, match="interpreted"):
            validate_engine("turbo")
        assert set(ENGINES) == {"vectorized", "interpreted"}


# ---------------------------------------------------------------------------
# search-level differential: whole tuner runs, both engines
# ---------------------------------------------------------------------------

SMOKE = get_scale("smoke")


def _mixed_cluster() -> HeterogeneousCluster:
    return HeterogeneousCluster(groups=(
        DeviceGroup("a100", make_cluster("A100-40GB", 1, 2)),
        DeviceGroup("l4", make_cluster("L4", 1, 2)),
    ))


def _make_tuner(cluster, space: str) -> MistTuner:
    pcie_only = True
    if not isinstance(cluster, HeterogeneousCluster):
        pcie_only = not cluster.gpu.has_nvlink
    return MistTuner(
        get_model("gpt3-1.3b"), cluster, seq_len=2048,
        space=SMOKE.apply(NAMED_SPACES[space]),
        interference=calibrated_interference(pcie_only),
        max_pareto_points=SMOKE.max_pareto_points,
        max_gacc_candidates=SMOKE.max_gacc_candidates,
    )


def _plan_bytes(plan):
    return None if plan is None else plan.to_json()


class TestSearchDifferential:
    """Engines are interchangeable: same plans, same work accounting.

    Spaces are kept small ('3d', '3d-ckpt') because the interpreted
    reference path costs ~5ms per configuration by design.
    """

    @pytest.mark.parametrize("prune", [False, True],
                             ids=["exhaustive", "pruned"])
    @pytest.mark.parametrize("cluster_kind", ["homogeneous", "heterogeneous"])
    def test_engines_bit_identical(self, cluster_kind, prune):
        cluster = (make_cluster("L4", 1, 2) if cluster_kind == "homogeneous"
                   else _mixed_cluster())
        tuner = _make_tuner(cluster, "3d-ckpt")
        results = {}
        for engine in ENGINES:
            results[engine] = tuner.search(
                16, keep_top=3, prune=prune,
                memo=MenuMemo() if prune else None, engine=engine)

        vec, ref = results["vectorized"], results["interpreted"]
        assert _plan_bytes(vec.best_plan) == _plan_bytes(ref.best_plan)
        assert [_plan_bytes(p) for p in vec.top_plans] \
            == [_plan_bytes(p) for p in ref.top_plans]
        assert plan_hash(vec.best_plan) == plan_hash(ref.best_plan)
        assert vec.predicted_iteration_time == ref.predicted_iteration_time
        assert vec.predicted_throughput == ref.predicted_throughput
        # the engine may not change how much work is *counted*
        assert vec.configurations_evaluated == ref.configurations_evaluated
        assert vec.stats.configs_prefiltered == ref.stats.configs_prefiltered
        assert vec.stats.engine == "vectorized"
        assert ref.stats.engine == "interpreted"

    def test_memo_entries_are_engine_scoped(self):
        # a warm memo from one engine must not replay into the other:
        # cross-engine hits would mask exactly the divergence this
        # harness exists to catch
        tuner = _make_tuner(make_cluster("L4", 1, 2), "3d")
        memo = MenuMemo()
        vec = tuner.search(16, memo=memo, engine="vectorized")
        ref = tuner.search(16, memo=memo, engine="interpreted")
        assert ref.stats.memo_hits == 0
        assert ref.stats.memo_misses > 0
        assert _plan_bytes(vec.best_plan) == _plan_bytes(ref.best_plan)

    def test_unknown_engine_rejected_before_any_work(self):
        tuner = _make_tuner(make_cluster("L4", 1, 2), "3d")
        with pytest.raises(ValueError, match="unknown engine"):
            tuner.search(16, engine="numba")
