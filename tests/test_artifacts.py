"""Artifact names: one source of truth, and every consumer on it.

:mod:`repro.benchmarking.artifacts` is the only place the bench/load
artifact filenames live. The CLI defaults and the CI workflow both
consume them — these tests pin that agreement so a rename can never
leave an upload step (or a baseline gate) pointing at a file nobody
writes anymore.
"""

from pathlib import Path

from repro.benchmarking import (
    BENCH_ARTIFACT,
    BENCH_BASELINE,
    LOAD_ARTIFACT,
    LOAD_BASELINE,
)
from repro.cli import build_parser

CI = Path(__file__).resolve().parents[1] / ".github" / "workflows" / "ci.yml"


class TestCliDefaults:
    def test_bench_out_default(self):
        args = build_parser().parse_args(["bench"])
        assert args.out == BENCH_ARTIFACT

    def test_load_out_default(self):
        args = build_parser().parse_args(["load"])
        assert args.out == LOAD_ARTIFACT

    def test_bench_warm_speedup_gate_default(self):
        # the CI perf job passes 2.0 explicitly; the CLI default must
        # agree so a bare `repro bench` enforces the same bar
        args = build_parser().parse_args(["bench"])
        assert args.min_warm_speedup == 2.0


class TestCiWorkflowAgreement:
    def test_ci_uses_canonical_names(self):
        text = CI.read_text()
        for name in (BENCH_ARTIFACT, LOAD_ARTIFACT, BENCH_BASELINE):
            assert name in text, f"ci.yml no longer mentions {name}"

    def test_baselines_are_committed(self):
        root = CI.parents[2]
        assert (root / BENCH_BASELINE).exists()
        assert (root / LOAD_BASELINE).exists()

    def test_perf_job_gates_warm_speedup(self):
        assert "--min-warm-speedup 2.0" in CI.read_text()
