"""The `repro bench` harness: snapshot schema, gates, CLI plumbing."""

from __future__ import annotations

import copy
import json

import pytest

from repro.benchmarking import (
    BENCH_SCHEMA,
    check_against_baseline,
    check_engine_speedup,
    check_warm_speedup,
    format_bench,
    run_bench,
    validate_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def snapshot() -> dict:
    return run_bench("smoke")


class TestSnapshot:
    def test_schema_and_shape(self, snapshot):
        assert snapshot["schema"] == BENCH_SCHEMA
        assert snapshot["scale"] == "smoke"
        assert set(snapshot["benchmarks"]) == {
            "fig16_tuning_time", "fig16_exhaustive_reference",
            "fig16_interpreted_engine", "fig_replan"}
        pruned = snapshot["benchmarks"]["fig16_tuning_time"]
        assert pruned["wall_time_seconds"] > 0
        assert pruned["per_space"]
        assert pruned["parallel"]["matches_serial"]

    def test_snapshot_is_strict_json(self, snapshot):
        def _no_constants(_):
            raise AssertionError("non-standard JSON constant emitted")
        json.loads(json.dumps(snapshot), parse_constant=_no_constants)

    def test_gates_pass_on_fresh_snapshot(self, snapshot):
        assert validate_bench(snapshot) == []
        assert snapshot["derived"]["plans_match_exhaustive"]
        assert snapshot["derived"]["fig16_speedup"] > 0

    def test_engine_comparison_recorded(self, snapshot):
        assert snapshot["derived"]["plans_match_interpreted"]
        assert snapshot["derived"]["fig16_engine_speedup"] > 1.0
        interpreted = snapshot["benchmarks"]["fig16_interpreted_engine"]
        assert interpreted["engine"] == "interpreted"
        assert snapshot["benchmarks"]["fig16_tuning_time"]["engine"] \
            == "vectorized"

    def test_counters_nonzero(self, snapshot):
        stats = snapshot["benchmarks"]["fig16_tuning_time"]["stats"]
        assert stats["cells_pruned"] > 0
        assert stats["configs_prefiltered"] > 0
        parallel = snapshot["benchmarks"]["fig16_tuning_time"]["parallel"]
        assert stats["memo_hits"] + parallel["memo_hits"] > 0

    def test_format_is_printable(self, snapshot):
        text = format_bench(snapshot)
        assert "fig16_tuning_time" in text
        assert "speedup vs exhaustive" in text
        assert "vectorized vs interpreted engine" in text

    def test_replan_pass_recorded(self, snapshot):
        replan = snapshot["benchmarks"]["fig_replan"]
        assert replan["scenarios"]
        assert all(entry["plans_match"]
                   for entry in replan["scenarios"].values())
        assert snapshot["derived"]["replan_plans_match"]
        assert snapshot["derived"]["fig_replan_speedup"] > 1.0

    def test_comparison_passes_are_optional(self):
        trimmed = run_bench("smoke", include_exhaustive=False,
                            include_interpreted=False,
                            include_replan=False)
        assert set(trimmed["benchmarks"]) == {"fig16_tuning_time"}
        assert "fig16_engine_speedup" not in trimmed["derived"]
        assert "fig_replan_speedup" not in trimmed["derived"]
        # no comparison data: both speedup gates pass vacuously
        assert check_engine_speedup(trimmed, min_speedup=2.0) == []
        assert check_warm_speedup(trimmed, min_speedup=2.0) == []


class TestGates:
    def test_hash_drift_fails_validation(self, snapshot):
        tampered = copy.deepcopy(snapshot)
        hashes = tampered["benchmarks"]["fig16_tuning_time"]["plan_hashes"]
        space = next(iter(hashes))
        hashes[space] = "deadbeefdeadbeef"
        tampered["derived"]["plans_match_exhaustive"] = False
        problems = validate_bench(tampered)
        assert any("drifted" in p for p in problems)

    def test_zero_counters_fail_validation(self, snapshot):
        tampered = copy.deepcopy(snapshot)
        stats = tampered["benchmarks"]["fig16_tuning_time"]["stats"]
        stats["cells_pruned"] = 0
        problems = validate_bench(tampered)
        assert any("pruned no" in p for p in problems)

    def test_wall_time_regression_fails(self, snapshot):
        slower = copy.deepcopy(snapshot)
        bench = slower["benchmarks"]["fig16_tuning_time"]
        bench["wall_time_seconds"] = \
            snapshot["benchmarks"]["fig16_tuning_time"][
                "wall_time_seconds"] * 2 + 10
        problems = check_against_baseline(slower, snapshot,
                                          max_regression=0.25)
        assert any("regressed" in p for p in problems)

    def test_sub_threshold_noise_passes(self, snapshot):
        jitter = copy.deepcopy(snapshot)
        bench = jitter["benchmarks"]["fig16_tuning_time"]
        bench["wall_time_seconds"] *= 1.20  # < 25%: fine
        assert check_against_baseline(jitter, snapshot) == []

    def test_absolute_noise_floor(self, snapshot):
        # +50% of nearly nothing is scheduler noise, not a regression
        tiny_base = copy.deepcopy(snapshot)
        tiny_base["benchmarks"]["fig16_tuning_time"][
            "wall_time_seconds"] = 0.2
        tiny_cur = copy.deepcopy(snapshot)
        tiny_cur["benchmarks"]["fig16_tuning_time"][
            "wall_time_seconds"] = 0.3
        assert check_against_baseline(tiny_cur, tiny_base) == []

    def test_engine_plan_drift_fails_validation(self, snapshot):
        tampered = copy.deepcopy(snapshot)
        hashes = tampered["benchmarks"]["fig16_interpreted_engine"][
            "plan_hashes"]
        space = next(iter(hashes))
        hashes[space] = "deadbeefdeadbeef"
        tampered["derived"]["plans_match_interpreted"] = False
        problems = validate_bench(tampered)
        assert any("interpreted engine" in p and space in p
                   for p in problems)

    def test_engine_counter_mismatch_fails_validation(self, snapshot):
        tampered = copy.deepcopy(snapshot)
        tampered["benchmarks"]["fig16_interpreted_engine"]["stats"][
            "configs_evaluated"] += 1
        problems = validate_bench(tampered)
        assert any("engine-deterministic" in p for p in problems)

    def test_engine_speedup_gate(self, snapshot):
        assert check_engine_speedup(snapshot, min_speedup=2.0) == []
        slow = copy.deepcopy(snapshot)
        slow["derived"]["fig16_engine_speedup"] = 1.5
        problems = check_engine_speedup(slow, min_speedup=2.0)
        assert len(problems) == 1 and "1.50x" in problems[0]
        # an explicit 0 disables the gate
        assert check_engine_speedup(slow, min_speedup=0.0) == []

    def test_warm_speedup_gate(self, snapshot):
        assert check_warm_speedup(snapshot, min_speedup=2.0) == []
        slow = copy.deepcopy(snapshot)
        slow["derived"]["fig_replan_speedup"] = 1.2
        problems = check_warm_speedup(slow, min_speedup=2.0)
        assert len(problems) == 1 and "1.20x" in problems[0]
        # an explicit 0 disables the gate
        assert check_warm_speedup(slow, min_speedup=0.0) == []

    def test_replan_plan_drift_fails_validation(self, snapshot):
        tampered = copy.deepcopy(snapshot)
        scenarios = tampered["benchmarks"]["fig_replan"]["scenarios"]
        name = next(iter(scenarios))
        scenarios[name]["plans_match"] = False
        tampered["benchmarks"]["fig_replan"]["plans_match"] = False
        tampered["derived"]["replan_plans_match"] = False
        problems = validate_bench(tampered)
        assert any("warm replan plans drifted" in p and name in p
                   for p in problems)

    def test_scale_mismatch_fails(self, snapshot):
        other = copy.deepcopy(snapshot)
        other["scale"] = "quick"
        problems = check_against_baseline(snapshot, other)
        assert any("scale" in p for p in problems)


class TestCli:
    def test_bench_command_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        code = main(["bench", "--scale", "smoke", "--out", str(out)])
        assert code == 0
        written = json.loads(out.read_text())
        assert written["schema"] == BENCH_SCHEMA
        assert validate_bench(written) == []
        assert "bench gates: OK" in capsys.readouterr().out

    def test_bench_command_gates_against_baseline(self, tmp_path, capsys,
                                                  snapshot):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(snapshot))
        out = tmp_path / "BENCH_test.json"
        code = main(["bench", "--scale", "smoke", "--out", str(out),
                     "--baseline", str(baseline),
                     "--max-regression", "5.0"])
        assert code == 0

    def test_bench_command_rejects_bad_baseline(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        out = tmp_path / "BENCH_test.json"
        code = main(["bench", "--scale", "smoke", "--out", str(out),
                     "--baseline", str(bad)])
        assert code == 2
