"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-2.7b" in out
        assert "llama-6.7b" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_requires_workload_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--model", "gpt3-1.3b"])


class TestAnalyze:
    def test_analyze_valid_config(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "2", "--dp", "1", "--gacc", "8",
            "--zero", "1", "--ckpt", "full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "samples/s" in out

    def test_analyze_oom_reported(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-6.7b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "1", "--dp", "2", "--gacc", "4",
        ])
        assert code == 1
        assert "OOM" in capsys.readouterr().out

    def test_analyze_invalid_config(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "7", "--stages", "2",
            "--dp", "2", "--gacc", "2",
        ])
        assert code == 1
        assert "invalid" in capsys.readouterr().out

    def test_analyze_timeline(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "2", "--dp", "1", "--gacc", "8",
            "--zero", "1", "--ckpt", "full", "--timeline",
        ])
        assert code == 0
        assert "stage  0 |" in capsys.readouterr().out


class TestTune:
    def test_tune_smoke_scale(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan[mist" in out
        assert "samples/s" in out
