"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
MIXED_FILE = str(EXAMPLES / "mixed_a100_l4.json")


class TestParser:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-2.7b" in out
        assert "llama-6.7b" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_requires_workload_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--model", "gpt3-1.3b"])


class TestAnalyze:
    def test_analyze_valid_config(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "2", "--dp", "1", "--gacc", "8",
            "--zero", "1", "--ckpt", "full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "samples/s" in out

    def test_analyze_oom_reported(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-6.7b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "1", "--dp", "2", "--gacc", "4",
        ])
        assert code == 1
        assert "OOM" in capsys.readouterr().out

    def test_analyze_invalid_config(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "7", "--stages", "2",
            "--dp", "2", "--gacc", "2",
        ])
        assert code == 1
        assert "invalid" in capsys.readouterr().out

    def test_analyze_timeline(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "2", "--dp", "1", "--gacc", "8",
            "--zero", "1", "--ckpt", "full", "--timeline",
        ])
        assert code == 0
        assert "stage  0 |" in capsys.readouterr().out


class TestSolvers:
    def test_lists_registered_solvers(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("mist", "megatron", "deepspeed", "aceso", "uniform"):
            assert name in out


class TestTune:
    def test_tune_smoke_scale(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan[mist" in out
        assert "samples/s" in out

    def test_tune_parallel_compare_and_json(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--scale", "smoke", "--parallelism", "2",
            "--compare", "megatron",
            "--json", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "megatron:" in out
        from repro.api import SolveReport
        import json
        payload = json.loads(out_file.read_text())
        assert len(payload) == 2
        loaded = SolveReport.from_dict(payload[0])
        assert loaded.solver == "mist" and loaded.found

    def test_tune_engine_flag_is_plan_invariant(self, capsys, tmp_path):
        # --engine selects the cost-model path only: same plan, same
        # report payload (modulo the non-fingerprinted runtime field)
        from repro.api import TuningJob
        payloads = {}
        for engine in ("vectorized", "interpreted"):
            out_file = tmp_path / f"report-{engine}.json"
            code = main([
                "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
                "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
                "--scale", "smoke", "--space", "3d",
                "--engine", engine, "--json", str(out_file),
            ])
            assert code == 0
            payloads[engine] = json.loads(out_file.read_text())
        vec, ref = payloads["vectorized"], payloads["interpreted"]
        assert vec["plan"] == ref["plan"]
        assert ref["job"]["engine"] == "interpreted"
        assert "engine" not in vec["job"]  # default stays implicit
        assert TuningJob.from_dict(vec["job"]).fingerprint() \
            == TuningJob.from_dict(ref["job"]).fingerprint()

    def test_tune_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
                "--gpus", "2", "--global-batch", "8",
                "--engine", "turbo",
            ])
        assert "--engine" in capsys.readouterr().err

    def test_tune_invalid_job_clean_error(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "-1", "--global-batch", "8", "--scale", "smoke",
        ])
        assert code == 2
        assert "invalid job" in capsys.readouterr().out

    def test_tune_json_written_when_infeasible(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code = main([
            "tune", "--model", "gpt3-6.7b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--scale", "smoke",
            "--space", "3d", "--json", str(out_file),
        ])
        assert code == 1
        assert "no feasible plan" in capsys.readouterr().out
        import json
        payload = json.loads(out_file.read_text())
        assert payload["plan"] is None

    def test_tune_unknown_solver(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--scale", "smoke",
            "--solver", "alpa",
        ])
        assert code == 2
        assert "unknown solver" in capsys.readouterr().out

    def test_tune_unknown_compare_solver(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--scale", "smoke",
            "--compare", "alpa",
        ])
        assert code == 2
        assert "unknown solver" in capsys.readouterr().out


class TestClusterCommand:
    def test_inspect_mixed_cluster(self, capsys):
        assert main(["cluster", MIXED_FILE]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous cluster: 8 GPUs in 2 group(s)" in out
        assert "A100-40GB" in out and "L4" in out
        assert "tuner memory budget" in out
        assert "baseline fallback view" in out

    def test_inspect_json_output(self, capsys):
        assert main(["cluster", MIXED_FILE, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["groups"]) == 2

    def test_inspect_homogeneous_file(self, capsys, tmp_path):
        path = tmp_path / "homo.json"
        path.write_text(json.dumps(
            {"gpu": "L4", "num_nodes": 1, "gpus_per_node": 4}))
        assert main(["cluster", str(path)]) == 0
        out = capsys.readouterr().out
        assert "homogeneous cluster" in out
        assert "4 GPUs" in out

    def test_missing_file_clean_error(self, capsys):
        assert main(["cluster", "/no/such/file.json"]) == 2
        assert "invalid cluster file" in capsys.readouterr().out

    def test_bad_schema_clean_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"gpu": "no-such-gpu",
                                    "gpus_per_node": 4}))
        assert main(["cluster", str(path)]) == 2
        assert "invalid cluster file" in capsys.readouterr().out

    def test_non_object_json_clean_error(self, capsys, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        assert main(["cluster", str(path)]) == 2
        assert "invalid cluster file" in capsys.readouterr().out
        assert main(["tune", "--model", "gpt3-1.3b", "--global-batch",
                     "8", "--cluster", str(path), "--scale", "smoke"]) == 2
        assert "invalid job" in capsys.readouterr().out


class TestTuneCluster:
    def _mixed_small(self, tmp_path) -> str:
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps({"groups": [
            {"name": "a100", "gpu": "A100-40GB", "num_nodes": 1,
             "gpus_per_node": 2},
            {"name": "l4", "gpu": "L4", "num_nodes": 1,
             "gpus_per_node": 2},
        ]}))
        return str(path)

    def test_tune_heterogeneous_cluster(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code = main([
            "tune", "--model", "gpt3-1.3b", "--global-batch", "16",
            "--cluster", self._mixed_small(tmp_path),
            "--scale", "smoke", "--json", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2xA100-40GB+2xL4" in out
        assert "@a100" in out and "@l4" in out
        payload = json.loads(out_file.read_text())
        groups = {s.get("device_group") for s in payload["plan"]["stages"]}
        assert groups == {"a100", "l4"}

    def test_homogeneous_cluster_file_matches_flag_path(self, capsys,
                                                        tmp_path):
        homo = tmp_path / "homo.json"
        homo.write_text(json.dumps(
            {"gpu": "L4", "num_nodes": 1, "gpus_per_node": 2}))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["tune", "--model", "gpt3-1.3b", "--global-batch", "8",
                     "--cluster", str(homo), "--scale", "smoke",
                     "--json", str(a)]) == 0
        assert main(["tune", "--model", "gpt3-1.3b", "--gpu", "L4",
                     "--gpus", "2", "--global-batch", "8",
                     "--scale", "smoke", "--json", str(b)]) == 0
        plan_a = json.loads(a.read_text())["plan"]
        plan_b = json.loads(b.read_text())["plan"]
        assert plan_a == plan_b

    def test_gpus_contradicting_cluster_rejected(self, capsys, tmp_path):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--global-batch", "16",
            "--gpus", "8", "--cluster", self._mixed_small(tmp_path),
            "--scale", "smoke",
        ])
        assert code == 2
        assert "contradicts" in capsys.readouterr().out

    def test_explicit_gpu_with_cluster_rejected(self, capsys, tmp_path):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--global-batch", "16",
            "--gpu", "H100-80GB", "--cluster", self._mixed_small(tmp_path),
            "--scale", "smoke",
        ])
        assert code == 2
        assert "--gpu conflicts" in capsys.readouterr().out

    def test_missing_gpus_without_cluster_rejected(self, capsys):
        code = main(["tune", "--model", "gpt3-1.3b",
                     "--global-batch", "16", "--scale", "smoke"])
        assert code == 2
        assert "--gpus is required" in capsys.readouterr().out


class TestSweep:
    def test_sweep_through_registry(self, capsys, tmp_path):
        code = main([
            "sweep", "--gpu", "L4", "--sizes", "1.3b",
            "--solvers", "megatron", "mist",
            "--scale", "smoke", "--global-batch", "8",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "sweep.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "megatron (samp/s | x)" in out
        assert "1.00x" in out
        assert (tmp_path / "sweep.json").exists()

    def test_sweep_cache_reused(self, capsys, tmp_path):
        args = [
            "sweep", "--gpu", "L4", "--sizes", "1.3b",
            "--solvers", "mist", "--scale", "smoke",
            "--global-batch", "8", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_sweep_unknown_size(self, capsys):
        code = main(["sweep", "--sizes", "9000b", "--solvers", "mist",
                     "--scale", "smoke"])
        assert code == 2

    def test_sweep_bad_reference_rejected(self, capsys):
        code = main(["sweep", "--sizes", "1.3b", "--solvers", "mist",
                     "--reference", "mists", "--scale", "smoke"])
        assert code == 2
        assert "--reference" in capsys.readouterr().out


class TestCampaignCommand:
    SPEC = {
        "name": "cli-grid",
        "solvers": ["megatron", "mist"],
        "models": ["gpt3-1.3b"],
        "clusters": [{"gpu": "L4", "num_gpus": 2}],
        "scales": ["smoke"],
        "global_batches": [8],
        "interference": "none",
    }

    def _spec_file(self, tmp_path) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_run_then_resume_zero_new_searches(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        run_dir = str(tmp_path / "run")
        out_file = tmp_path / "report.json"
        code = main(["campaign", "run", spec, "--dir", run_dir,
                     "--json", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "samples/s" in out
        assert "2/2 cells done" in out
        assert "solved 2" in out

        from repro.campaigns import CampaignReport

        report = CampaignReport.from_json(out_file.read_text())
        assert report.complete
        assert report.counters["solved"] == 2

        # immediate --resume: everything from the manifest, no searches
        code = main(["campaign", "run", spec, "--dir", run_dir,
                     "--resume", "--json", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "(manifest)" in out
        resumed = CampaignReport.from_json(out_file.read_text())
        assert resumed.counters["solved"] == 0
        assert resumed.counters["manifest_hits"] == 2
        # per-cell plans identical across runs (and so to solve())
        assert ([rec["plan"] for rec in resumed.cells]
                == [rec["plan"] for rec in report.cells])

    def test_status_and_report_commands(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        run_dir = str(tmp_path / "run")
        assert main(["campaign", "run", spec, "--dir", run_dir]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", "--dir", run_dir]) == 0
        out = capsys.readouterr().out
        assert "cli-grid" in out
        assert "2/2 done" in out

        out_file = tmp_path / "again.json"
        assert main(["campaign", "report", "--dir", run_dir,
                     "--json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "megatron (samp/s | x)" in out
        assert json.loads(out_file.read_text())["counters"]["done"] == 2

    def test_missing_spec_file_clean_error(self, capsys):
        assert main(["campaign", "run", "/no/such/spec.json"]) == 2
        assert "invalid campaign spec" in capsys.readouterr().out

    def test_invalid_spec_clean_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "solvers": []}))
        assert main(["campaign", "run", str(path)]) == 2
        assert ">= 1 solver" in capsys.readouterr().out

    def test_resume_requires_dir(self, capsys, tmp_path):
        assert main(["campaign", "run", self._spec_file(tmp_path),
                     "--resume"]) == 2
        assert "--resume requires --dir" in capsys.readouterr().out

    def test_service_executor_requires_url(self, capsys, tmp_path):
        assert main(["campaign", "run", self._spec_file(tmp_path),
                     "--executor", "service"]) == 2
        assert "--service-url" in capsys.readouterr().out

    def test_status_without_manifest(self, capsys, tmp_path):
        assert main(["campaign", "status", "--dir",
                     str(tmp_path / "nope")]) == 2
        assert "no readable campaign manifest" in capsys.readouterr().out

    def test_unknown_solver_in_spec(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            {**self.SPEC, "solvers": ["alpa"]}))
        assert main(["campaign", "run", str(path)]) == 2
        assert "unknown solver" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.workers == 2
        assert args.cache_dir is None

    def test_serve_accepts_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--workers", "8", "--cache-dir", "/tmp/plans"])
        assert (args.host, args.port, args.workers) == ("0.0.0.0", 0, 8)
        assert args.cache_dir == "/tmp/plans"

    def test_serve_boots_and_answers_healthz(self, tmp_path):
        # drive the same wiring _cmd_serve uses, minus the blocking
        # serve_forever() (covered by scripts/service_smoke.py in CI)
        from repro.api import PlanCache
        from repro.service import Client, TuningService

        service = TuningService(workers=1,
                                cache=PlanCache(tmp_path / "plans"))
        handle = service.run_in_thread()
        try:
            assert Client(handle.url).health()["status"] == "ok"
        finally:
            handle.stop()
