"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-2.7b" in out
        assert "llama-6.7b" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_requires_workload_args(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--model", "gpt3-1.3b"])


class TestAnalyze:
    def test_analyze_valid_config(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "2", "--dp", "1", "--gacc", "8",
            "--zero", "1", "--ckpt", "full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "samples/s" in out

    def test_analyze_oom_reported(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-6.7b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "1", "--dp", "2", "--gacc", "4",
        ])
        assert code == 1
        assert "OOM" in capsys.readouterr().out

    def test_analyze_invalid_config(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "7", "--stages", "2",
            "--dp", "2", "--gacc", "2",
        ])
        assert code == 1
        assert "invalid" in capsys.readouterr().out

    def test_analyze_timeline(self, capsys):
        code = main([
            "analyze", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--stages", "2", "--dp", "1", "--gacc", "8",
            "--zero", "1", "--ckpt", "full", "--timeline",
        ])
        assert code == 0
        assert "stage  0 |" in capsys.readouterr().out


class TestSolvers:
    def test_lists_registered_solvers(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("mist", "megatron", "deepspeed", "aceso", "uniform"):
            assert name in out


class TestTune:
    def test_tune_smoke_scale(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan[mist" in out
        assert "samples/s" in out

    def test_tune_parallel_compare_and_json(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--seq-len", "2048",
            "--scale", "smoke", "--parallelism", "2",
            "--compare", "megatron",
            "--json", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "megatron:" in out
        from repro.api import SolveReport
        import json
        payload = json.loads(out_file.read_text())
        assert len(payload) == 2
        loaded = SolveReport.from_dict(payload[0])
        assert loaded.solver == "mist" and loaded.found

    def test_tune_invalid_job_clean_error(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "-1", "--global-batch", "8", "--scale", "smoke",
        ])
        assert code == 2
        assert "invalid job" in capsys.readouterr().out

    def test_tune_json_written_when_infeasible(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code = main([
            "tune", "--model", "gpt3-6.7b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--scale", "smoke",
            "--space", "3d", "--json", str(out_file),
        ])
        assert code == 1
        assert "no feasible plan" in capsys.readouterr().out
        import json
        payload = json.loads(out_file.read_text())
        assert payload["plan"] is None

    def test_tune_unknown_solver(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--scale", "smoke",
            "--solver", "alpa",
        ])
        assert code == 2
        assert "unknown solver" in capsys.readouterr().out

    def test_tune_unknown_compare_solver(self, capsys):
        code = main([
            "tune", "--model", "gpt3-1.3b", "--gpu", "L4",
            "--gpus", "2", "--global-batch", "8", "--scale", "smoke",
            "--compare", "alpa",
        ])
        assert code == 2
        assert "unknown solver" in capsys.readouterr().out


class TestSweep:
    def test_sweep_through_registry(self, capsys, tmp_path):
        code = main([
            "sweep", "--gpu", "L4", "--sizes", "1.3b",
            "--solvers", "megatron", "mist",
            "--scale", "smoke", "--global-batch", "8",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "sweep.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "megatron (samp/s | x)" in out
        assert "1.00x" in out
        assert (tmp_path / "sweep.json").exists()

    def test_sweep_cache_reused(self, capsys, tmp_path):
        args = [
            "sweep", "--gpu", "L4", "--sizes", "1.3b",
            "--solvers", "mist", "--scale", "smoke",
            "--global-batch", "8", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_sweep_unknown_size(self, capsys):
        code = main(["sweep", "--sizes", "9000b", "--solvers", "mist",
                     "--scale", "smoke"])
        assert code == 2

    def test_sweep_bad_reference_rejected(self, capsys):
        code = main(["sweep", "--sizes", "1.3b", "--solvers", "mist",
                     "--reference", "mists", "--scale", "smoke"])
        assert code == 2
        assert "--reference" in capsys.readouterr().out
