"""Docs stay truthful: links resolve, API.md examples execute.

Mirrors the CI ``docs`` job so a broken doc link or a stale ``>>>``
example in ``docs/API.md`` fails tier-1 locally too.
"""

from __future__ import annotations

import doctest
import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    path = ROOT / "scripts" / "check_docs_links.py"
    spec = importlib.util.spec_from_file_location("check_docs_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsLinks:
    def test_all_relative_links_resolve(self):
        checker = _load_checker()
        problems = {}
        for doc in checker.DOC_FILES:
            assert doc.exists(), f"doc file vanished: {doc}"
            missing = checker.broken_links(doc)
            if missing:
                problems[str(doc.relative_to(ROOT))] = missing
        assert not problems, f"broken doc links: {problems}"

    def test_readme_links_docs_tree(self):
        readme = (ROOT / "README.md").read_text()
        for target in ("docs/ARCHITECTURE.md", "docs/API.md"):
            assert target in readme, f"README does not link {target}"


class TestApiDocExamples:
    def test_api_md_doctests(self):
        results = doctest.testfile(
            str(ROOT / "docs" / "API.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 10, "API.md lost its runnable examples"
        assert results.failed == 0
