"""Docs stay truthful: links resolve, API.md examples execute.

Mirrors the CI ``docs`` job so a broken doc link or a stale ``>>>``
example in ``docs/API.md`` fails tier-1 locally too.
"""

from __future__ import annotations

import doctest
import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    path = ROOT / "scripts" / "check_docs_links.py"
    spec = importlib.util.spec_from_file_location("check_docs_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsLinks:
    def test_all_relative_links_resolve(self):
        checker = _load_checker()
        problems = {}
        for doc in checker.DOC_FILES:
            assert doc.exists(), f"doc file vanished: {doc}"
            missing = checker.broken_links(doc)
            if missing:
                problems[str(doc.relative_to(ROOT))] = missing
        assert not problems, f"broken doc links: {problems}"

    def test_readme_links_docs_tree(self):
        readme = (ROOT / "README.md").read_text()
        for target in ("docs/ARCHITECTURE.md", "docs/API.md",
                       "docs/SERVICE.md"):
            assert target in readme, f"README does not link {target}"

    def test_new_docs_pages_are_covered_by_checker(self):
        # the link checker must pick up docs pages automatically
        checker = _load_checker()
        covered = {doc.name for doc in checker.DOC_FILES}
        assert {"SERVICE.md", "BENCHMARKS.md"} <= covered

    def test_checker_catches_bad_anchor(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "page.md"
        doc.write_text("# Real Heading\n[ok](#real-heading) "
                       "[bad](#no-such-section)\n")
        assert checker.broken_links(doc) == [
            "#no-such-section (no such heading)"]


class TestApiDocExamples:
    def test_api_md_doctests(self):
        results = doctest.testfile(
            str(ROOT / "docs" / "API.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 10, "API.md lost its runnable examples"
        assert results.failed == 0

    def test_service_md_doctests(self):
        results = doctest.testfile(
            str(ROOT / "docs" / "SERVICE.md"),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 5, "SERVICE.md lost its runnable examples"
        assert results.failed == 0


class TestAnchorSlugs:
    def test_duplicate_headings_get_github_suffixes(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "page.md"
        doc.write_text("## Running\ntext\n## Running\n"
                       "[first](#running) [second](#running-1)\n")
        assert checker.broken_links(doc) == []
        assert checker.heading_slugs(doc) == {"running", "running-1"}
