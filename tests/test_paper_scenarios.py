"""Regression tests for the paper's core claims at test-friendly scale.

These pin the behaviours the reproduction's figures depend on, so a
refactor that silently breaks a trade-off fails fast here rather than
in a long benchmark run.
"""

import numpy as np
import pytest

from repro.core import (
    MistTuner,
    SPACE_3D,
    SPACE_MIST,
    SymbolicPerformanceAnalyzer,
)
from repro.core.plan import StageConfig, TrainingPlan, uniform_plan
from repro.evaluation import calibrated_interference
from repro.execution import ExecutionEngine, OOMError
from repro.hardware import make_cluster
from repro.models import get_model
from repro.tracing import trace

MODEL = get_model("gpt3-1.3b")
CLUSTER = make_cluster("L4", 1, 2)
SEQ = 2048


@pytest.fixture(scope="module")
def engine():
    return ExecutionEngine(CLUSTER, system="mist")


@pytest.fixture(scope="module")
def analyzer():
    return SymbolicPerformanceAnalyzer(
        trace(MODEL, CLUSTER.gpu, flash=True), CLUSTER,
        interference=calibrated_interference(True),
    )


class TestMemoryParallelismTradeoffs:
    """Section 1's core observation: memory optimizations buy memory
    that parallelism changes can convert into speed."""

    def test_zero_enables_smaller_pipeline(self, engine):
        """Sharding states lets DP replace PP, removing bubbles
        (same per-device microbatch size in both plans)."""
        pp = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=8,
                          num_stages=2, dp=1, tp=1, zero=0, ckpt_all=True)
        dp = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=4,
                          num_stages=1, dp=2, tp=1, zero=2, ckpt_all=True)
        r_pp = engine.run(pp, MODEL, seq_len=SEQ)
        r_dp = engine.run(dp, MODEL, seq_len=SEQ)
        assert r_dp.throughput > r_pp.throughput

    def test_ckpt_reduction_pays_off_when_memory_allows(self, engine):
        """Fewer recomputed layers -> faster, all else equal."""
        full = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=8,
                            num_stages=1, dp=2, tp=1, zero=2,
                            ckpt_all=True)
        partial = TrainingPlan(
            global_batch=16, gacc=8,
            stages=(StageConfig(layers=24, microbatch=1, dp=2, tp=1,
                                zero=2, ckpt=8),),
        )
        r_full = engine.run(full, MODEL, seq_len=SEQ)
        r_partial = engine.run(partial, MODEL, seq_len=SEQ)
        assert r_partial.throughput > r_full.throughput

    def test_offload_frees_memory_at_bounded_cost(self, engine):
        """Optimizer offload cuts peak memory; overlapped, its cost is
        far below the raw transfer time."""
        base = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=8,
                            num_stages=1, dp=2, tp=1, zero=1,
                            ckpt_all=True)
        off = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=8,
                           num_stages=1, dp=2, tp=1, zero=1,
                           ckpt_all=True, oo=1.0)
        r_base = engine.run(base, MODEL, seq_len=SEQ)
        r_off = engine.run(off, MODEL, seq_len=SEQ)
        assert r_off.peak_memory < r_base.peak_memory
        assert r_off.iteration_time < 1.5 * r_base.iteration_time

    def test_microbatch_size_kernel_efficiency(self, engine):
        """Bigger microbatches run more efficiently (fewer of them)."""
        small_b = uniform_plan(MODEL, CLUSTER, global_batch=32, gacc=16,
                               num_stages=1, dp=2, tp=1, zero=2,
                               ckpt_all=True)
        big_b = uniform_plan(MODEL, CLUSTER, global_batch=32, gacc=4,
                             num_stages=1, dp=2, tp=1, zero=2,
                             ckpt_all=True)
        r_small = engine.run(small_b, MODEL, seq_len=SEQ)
        r_big = engine.run(big_b, MODEL, seq_len=SEQ)
        assert r_big.throughput > r_small.throughput


class TestPredictionQuality:
    """Section 6.6 in miniature: analyzer vs engine."""

    @pytest.mark.parametrize("zero,ckpt_all,oo", [
        (0, True, 0.0), (1, True, 0.5), (2, False, 0.0), (3, False, 0.5),
    ])
    def test_runtime_error_within_10pct(self, analyzer, engine, zero,
                                        ckpt_all, oo):
        plan = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=8,
                            num_stages=2, dp=1, tp=1, zero=zero,
                            ckpt_all=ckpt_all, oo=oo)
        try:
            measured = engine.run(plan, MODEL, seq_len=SEQ)
        except OOMError:
            pytest.skip("plan OOMs at this scale")
        predicted = analyzer.predict_plan(plan, seq_len=SEQ)
        err = abs(predicted.iteration_time - measured.iteration_time) \
            / measured.iteration_time
        assert err < 0.10

    def test_memory_prediction_conservative_enough(self, analyzer, engine):
        """If the analyzer says a plan fits, the engine agrees."""
        plan = uniform_plan(MODEL, CLUSTER, global_batch=16, gacc=8,
                            num_stages=1, dp=2, tp=1, zero=2,
                            ckpt_all=True)
        predicted = analyzer.predict_plan(plan, seq_len=SEQ)
        assert predicted.fits_memory
        measured = engine.run(plan, MODEL, seq_len=SEQ)  # must not OOM
        assert all(r.fits for r in measured.stage_memory)


class TestTunedPlanQuality:
    def test_mist_beats_its_own_3d_subspace(self):
        interference = calibrated_interference(True)
        full = MistTuner(MODEL, CLUSTER, seq_len=SEQ, space=SPACE_MIST,
                         interference=interference,
                         max_gacc_candidates=3).search(16)
        narrow = MistTuner(MODEL, CLUSTER, seq_len=SEQ,
                           space=SPACE_3D.with_(name="3d",
                                                ckpt_policy="full"),
                           interference=interference,
                           max_gacc_candidates=3).search(16)
        engine = ExecutionEngine(CLUSTER, system="mist")
        best_full = max(
            engine.run(p, MODEL, seq_len=SEQ).throughput
            for p in full.top_plans
        )
        best_narrow = max(
            engine.run(p, MODEL, seq_len=SEQ).throughput
            for p in narrow.top_plans
        )
        assert best_full >= best_narrow * 0.99

    def test_imbalance_awareness_never_hurts(self):
        interference = calibrated_interference(True)
        engine = ExecutionEngine(CLUSTER, system="mist")
        results = {}
        for aware in (True, False):
            space = SPACE_MIST.with_(name=f"imb={aware}",
                                     imbalance_aware=aware)
            tuned = MistTuner(MODEL, CLUSTER, seq_len=SEQ, space=space,
                              interference=interference,
                              max_gacc_candidates=3).search(16)
            results[aware] = max(
                engine.run(p, MODEL, seq_len=SEQ).throughput
                for p in tuned.top_plans
            )
        assert results[True] >= results[False] * 0.97
