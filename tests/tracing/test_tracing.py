"""Tests for liveness analysis and the stage memory/runtime models."""

import numpy as np
import pytest

from repro.hardware import get_gpu, make_cluster
from repro.models import build_transformer_layer, get_model
from repro.symbolic import evaluate, free_symbols
from repro.tracing import (
    backward_transient,
    forward_transient,
    trace,
)
from repro.tracing.symbols import hardware_env

BASE_ENV = {"b": 2, "s": 2048, "tp": 1}


def full_env(cluster, **overrides):
    env = dict(
        b=2, s=2048, tp=1, dp=2, l=8, ckpt=0,
        z1=0, z2=0, z3=0, wo=0.0, go=0.0, oo=0.0, ao=0.0,
        gacc=4, inflight=2, has_pre=0, has_post=0,
    )
    env.update({k: float(v.reshape(-1)[0])
                for k, v in hardware_env(cluster, env["dp"], env["tp"]).items()})
    env.update(overrides)
    return env


@pytest.fixture(scope="module")
def traced():
    return trace(get_model("gpt3-1.3b"), get_gpu("L4"), flash=True)


@pytest.fixture(scope="module")
def cluster():
    return make_cluster("L4", 1, 8)


class TestLiveness:
    def test_forward_transient_positive_and_bounded(self):
        layer = build_transformer_layer(get_model("gpt3-1.3b"), flash=True)
        transient = evaluate(forward_transient(layer), BASE_ENV)
        saved = evaluate(layer.saved_activation_bytes(), BASE_ENV)
        assert 0 < transient < 2 * saved

    def test_backward_transient_exceeds_forward(self):
        layer = build_transformer_layer(get_model("gpt3-1.3b"), flash=False)
        fwd = evaluate(forward_transient(layer), BASE_ENV)
        bwd = evaluate(backward_transient(layer), BASE_ENV)
        assert bwd > 0.5 * fwd  # gradients + stashes in flight

    def test_transient_scales_with_batch(self):
        layer = build_transformer_layer(get_model("gpt3-1.3b"), flash=True)
        t1 = evaluate(forward_transient(layer), {"b": 1, "s": 2048, "tp": 1})
        t4 = evaluate(forward_transient(layer), {"b": 4, "s": 2048, "tp": 1})
        assert t4 == pytest.approx(4 * t1, rel=0.01)


class TestStageMemory:
    def test_symbols_are_canonical(self, traced):
        syms = free_symbols(traced.memory.peak_bwd)
        assert "l" in syms and "ckpt" in syms and "ao" in syms

    def test_ckpt_reduces_memory(self, traced, cluster):
        env = full_env(cluster)
        base = evaluate(traced.memory.peak_bwd, env)
        ck = evaluate(traced.memory.peak_bwd, full_env(cluster, ckpt=8))
        assert ck < base

    def test_zero3_reduces_param_memory(self, traced, cluster):
        base = evaluate(traced.memory.params_resident, full_env(cluster))
        sharded = evaluate(traced.memory.params_resident,
                           full_env(cluster, z3=1, dp=4))
        # 1/4 sharded plus the two-layer gather buffer
        assert sharded < 0.6 * base

    def test_offloading_reduces_memory_monotonically(self, traced, cluster):
        peaks = [
            evaluate(traced.memory.peak_bwd, full_env(cluster, oo=r))
            for r in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(a >= b for a, b in zip(peaks, peaks[1:]))

    def test_activation_offload_scales_with_inflight(self, traced, cluster):
        tall = evaluate(traced.memory.activations_resident,
                        full_env(cluster, inflight=4))
        short = evaluate(traced.memory.activations_resident,
                         full_env(cluster, inflight=1))
        assert tall > 2 * short

    def test_first_stage_heavier_than_middle(self, traced, cluster):
        middle = evaluate(traced.memory.peak_bwd, full_env(cluster))
        first = evaluate(traced.memory.peak_bwd, full_env(cluster, has_pre=1))
        assert first > middle


class TestStageRuntime:
    def test_ckpt_adds_recompute_time(self, traced, cluster):
        base = evaluate(traced.runtime.comp_bwd, full_env(cluster))
        ck = evaluate(traced.runtime.comp_bwd, full_env(cluster, ckpt=8))
        assert ck > base

    def test_tp_comm_zero_when_tp1(self, traced, cluster):
        assert evaluate(traced.runtime.tp_fwd, full_env(cluster)) == 0

    def test_tp_comm_positive_when_sharded(self, traced, cluster):
        env = full_env(cluster, tp=2)
        env.update({k: float(v.reshape(-1)[0]) for k, v in
                    hardware_env(cluster, 2, 2).items()})
        assert evaluate(traced.runtime.tp_fwd, env) > 0

    def test_zero3_adds_dp_comm(self, traced, cluster):
        base = evaluate(traced.runtime.dp_fwd, full_env(cluster))
        z3 = evaluate(traced.runtime.dp_fwd, full_env(cluster, z3=1))
        assert base == 0 and z3 > 0

    def test_grad_sync_moves_between_phases(self, traced, cluster):
        """ZeRO<2: grad sync in dp_last; ZeRO-2: per-microbatch dp_bwd."""
        env0 = full_env(cluster)
        env2 = full_env(cluster, z1=1, z2=1)
        assert evaluate(traced.runtime.dp_last, env0) > 0
        assert evaluate(traced.runtime.dp_bwd, env0) == 0
        assert evaluate(traced.runtime.dp_last, env2) == 0
        assert evaluate(traced.runtime.dp_bwd, env2) > 0

    def test_offload_traffic_on_host_channels(self, traced, cluster):
        env = full_env(cluster, ao=0.5)
        assert evaluate(traced.runtime.d2h_fwd, env) > 0
        assert evaluate(traced.runtime.h2d_bwd, env) > 0
        assert evaluate(traced.runtime.d2h_fwd, full_env(cluster)) == 0

    def test_optimizer_offload_first_microbatch_only(self, traced, cluster):
        env = full_env(cluster, oo=0.5)
        assert evaluate(traced.runtime.h2d_first, env) > 0
        assert evaluate(traced.runtime.d2h_first, env) > 0

    def test_edge_stage_p2p_cheaper(self, traced, cluster):
        interior = evaluate(traced.runtime.p2p_fwd, full_env(cluster))
        first = evaluate(traced.runtime.p2p_fwd, full_env(cluster, has_pre=1))
        single = evaluate(traced.runtime.p2p_fwd,
                          full_env(cluster, has_pre=1, has_post=1))
        assert interior > first > single == 0

    def test_batched_evaluation_matches_scalar(self, traced, cluster):
        """Vectorized envs agree with per-point evaluation."""
        ckpts = np.array([0, 4, 8])
        env = full_env(cluster)
        env["ckpt"] = ckpts
        batched = evaluate(traced.runtime.comp_bwd, env)
        for i, c in enumerate(ckpts):
            scalar = evaluate(traced.runtime.comp_bwd,
                              full_env(cluster, ckpt=int(c)))
            assert batched[i] == pytest.approx(scalar)
